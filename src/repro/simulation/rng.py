"""Deterministic random-number streams.

Every stochastic component in the repository draws from a named
substream derived from one root seed, so simulations are exactly
reproducible and independent components never share a stream (changing
how many samples one device draws cannot perturb another device).

Factories are :class:`~repro.snapshot.Snapshotable`: ``state()``
captures the seed, the namespace path, the fork lineage and every live
generator's bit-generator state across the whole spawn tree, and
``from_state`` rebuilds a factory whose future draws continue exactly
where the snapshot left off.  :meth:`RandomStreams.fork` rebrands a
warmed-up factory (in place, including generators components already
hold) as an independent deterministic branch: two forks of the same
snapshot agree on everything except their fork keys.
"""

from __future__ import annotations

from typing import Any, Mapping

import numpy as np

from ..snapshot import SNAPSHOT_VERSION, check_state

__all__ = ["RandomStreams", "BufferedStream"]

#: Domain separator mixed into derivation keys of forked factories.  A
#: legacy (unforked) key is ``[seed] + encoded-path`` whose second
#: element is a segment *byte length* (< 2**32 but realistically tiny);
#: this tag is far outside that range, so forked and unforked key spaces
#: cannot collide.
_FORK_TAG = 0x464F524B2D544147  # ASCII "FORK-TAG"


def _encode_path(path: tuple[str, ...]) -> list[int]:
    """Encode a stream path as an unambiguous flat key sequence.

    Each segment is rendered as its UTF-8 byte length followed by the
    byte values (a prefix code), so distinct paths can never flatten to
    the same key — ``("a", "b/c")`` encodes to ``[1, 97, 3, 98, 47, 99]``
    while ``("a/b", "c")`` encodes to ``[3, 97, 47, 98, 1, 99]``.  The
    naive per-character encoding this replaces collapsed both to the
    characters of ``"a/b/c"``, silently aliasing streams that sharded
    experiment replicas rely on being disjoint.
    """
    key: list[int] = []
    for segment in path:
        data = segment.encode("utf-8")
        key.append(len(data))
        key.extend(data)
    return key


class BufferedStream:
    """Block-prefetched scalar draws over a ``numpy.random.Generator``.

    Scalar numpy draws cost a full Python → C round trip each; vector
    fills amortize that across a block.  Crucially, a vector fill of
    ``n`` variates consumes *exactly* the same underlying bit-generator
    sequence — and produces the same values — as ``n`` scalar draws of
    the same kind, so prefetching is invisible to reproducibility as
    long as the generator's public state is re-synchronized before
    anyone else observes it.

    The wrapper keeps one block of one *kind* at a time (raw doubles,
    standard exponentials, or standard normals) plus the bit-generator
    state captured just before the block was filled.  :meth:`sync`
    rewinds to that state and re-draws exactly the consumed count, which
    lands the generator on the state the scalar path would have reached:

    * snapshots (``RandomStreams.state()``) sync first, so checkpoint
      payloads — and the replay digests that verify them — are
      byte-identical to unbuffered runs;
    * switching kinds (or falling back to a delegated method such as
      ``integers``) syncs first, so mixed-kind streams stay exact.

    Derived scalar draws reuse numpy's own reductions (verified
    bit-identical to the corresponding scalar methods):
    ``exponential(s) == s * standard_exponential()``,
    ``normal(m, s) == m + s * standard_normal()``, and
    ``uniform(a, b) == a + (b - a) * random()``.

    A stream wrapped by a ``BufferedStream`` must not also be drawn from
    via the raw generator while a block is outstanding — route every
    draw for that stream through the wrapper (delegated methods
    included).
    """

    __slots__ = ("_gen", "_block", "_kind", "_buf", "_pos", "_len", "_block_state")

    #: Draws prefetched per block fill.
    BLOCK = 1024

    def __init__(self, generator: np.random.Generator, block: int = BLOCK):
        self._gen = generator
        self._block = int(block)
        self._kind: str | None = None
        self._buf: np.ndarray | None = None
        self._pos = 0
        self._len = 0
        self._block_state: Any = None

    @property
    def generator(self) -> np.random.Generator:
        """The wrapped generator (sync'd so its state is current)."""
        self.sync()
        return self._gen

    def sync(self) -> None:
        """Re-synchronize the generator to the logically-consumed position.

        Rewinds to the pre-block state and re-draws exactly the consumed
        count, discarding the unconsumed tail of the block.  After this
        the generator's public state equals what scalar-path draws would
        have produced; a never-drawn block rewinds to exactly the
        pre-fill state.
        """
        kind = self._kind
        if kind is None:
            return
        gen = self._gen
        gen.bit_generator.state = self._block_state
        pos = self._pos
        if pos:
            if kind == "double":
                gen.random(pos)
            elif kind == "exponential":
                gen.standard_exponential(pos)
            else:
                gen.standard_normal(pos)
        self._kind = None
        self._buf = None
        self._pos = 0
        self._len = 0
        self._block_state = None

    def discard(self) -> None:
        """Drop any outstanding block without touching the generator.

        Used when the generator is reseeded out from under the wrapper
        (``RandomStreams.fork``): the prefetched values belong to the
        old seed and the captured pre-block state must not be restored.
        """
        self._kind = None
        self._buf = None
        self._pos = 0
        self._len = 0
        self._block_state = None

    def _fill(self, kind: str) -> np.ndarray:
        self.sync()
        gen = self._gen
        self._block_state = gen.bit_generator.state
        n = self._block
        if kind == "double":
            buf = gen.random(n)
        elif kind == "exponential":
            buf = gen.standard_exponential(n)
        else:
            buf = gen.standard_normal(n)
        self._kind = kind
        self._buf = buf
        self._pos = 0
        self._len = n
        return buf

    # -- buffered scalar draws ------------------------------------------

    def random(self) -> float:
        """Next raw double in [0, 1) — identical to ``Generator.random()``."""
        pos = self._pos
        if self._kind != "double" or pos >= self._len:
            buf = self._fill("double")
            pos = 0
        else:
            buf = self._buf
        self._pos = pos + 1
        return float(buf[pos])

    def uniform(self, low: float = 0.0, high: float = 1.0) -> float:
        """Uniform draw on [low, high) via the buffered double stream."""
        return low + (high - low) * self.random()

    def exponential(self, scale: float = 1.0) -> float:
        """Exponential draw — identical to ``Generator.exponential(scale)``."""
        pos = self._pos
        if self._kind != "exponential" or pos >= self._len:
            buf = self._fill("exponential")
            pos = 0
        else:
            buf = self._buf
        self._pos = pos + 1
        return scale * float(buf[pos])

    def standard_exponential(self) -> float:
        """Unit-scale exponential draw from the buffered stream."""
        return self.exponential(1.0)

    def normal(self, loc: float = 0.0, scale: float = 1.0) -> float:
        """Gaussian draw — identical to ``Generator.normal(loc, scale)``."""
        pos = self._pos
        if self._kind != "normal" or pos >= self._len:
            buf = self._fill("normal")
            pos = 0
        else:
            buf = self._buf
        self._pos = pos + 1
        return loc + scale * float(buf[pos])

    def standard_normal(self) -> float:
        """Unit Gaussian draw from the buffered stream."""
        return self.normal(0.0, 1.0)

    def __getattr__(self, name: str) -> Any:
        """Fall back to the raw generator for anything else (sync'd first)."""
        self.sync()
        return getattr(self._gen, name)


class RandomStreams:
    """A factory of independent, named ``numpy.random.Generator`` streams.

    Streams are derived from ``(root_seed, path)`` so the same path
    always yields the same stream regardless of creation order::

        streams = RandomStreams(seed=7)
        disk_rng = streams.get("disk.0")
        net_rng = streams.get("network")

    Every ``spawn()`` / ``get()`` name is one opaque path *segment* —
    segment boundaries are part of the stream identity.  Consequently
    ``spawn("a").get("b/c")``, ``spawn("a/b").get("c")`` and
    ``get("a/b/c")`` are three mutually disjoint streams: a ``"/"``
    inside a name is just a character, not a namespace hop.

    ``spawn`` is memoized: spawning the same name twice returns the
    *same* child factory, so every component holding "the stream at
    path P" holds the same generator object.  (Unmemoized spawns used
    to hand out duplicate generators for one path — two objects with
    identical seeds advancing independently — which snapshots could not
    represent and restores could not reconcile.)
    """

    def __init__(self, seed: int = 0, prefix: str = ""):
        self.seed = int(seed)
        self._path: tuple[str, ...] = (prefix,) if prefix else ()
        self._forks: tuple[str, ...] = ()
        self._streams: dict[str, np.random.Generator] = {}
        self._children: dict[str, "RandomStreams"] = {}
        self._buffered: dict[str, BufferedStream] = {}

    @property
    def prefix(self) -> str:
        """Human-readable namespace path (diagnostic only)."""
        return "/".join(self._path)

    @property
    def forks(self) -> tuple[str, ...]:
        """The fork keys applied to this factory, oldest first."""
        return self._forks

    def _derive_key(self, path: tuple[str, ...]) -> list[int]:
        """The SeedSequence entropy key for a stream at ``path``.

        Unforked factories keep the historic ``[seed] + path`` layout
        (so existing runs reproduce bit-for-bit); forked factories mix
        in a domain tag plus the fork lineage ahead of the path.
        """
        if not self._forks:
            return [self.seed] + _encode_path(path)
        return (
            [self.seed, _FORK_TAG]
            + _encode_path(self._forks)
            + _encode_path(path)
        )

    def get(self, name: str) -> np.random.Generator:
        """Return (creating if needed) the stream for ``name``."""
        if name not in self._streams:
            key = self._derive_key(self._path + (name,))
            self._streams[name] = np.random.default_rng(np.random.SeedSequence(key))
        return self._streams[name]

    def buffered(self, name: str) -> BufferedStream:
        """A block-prefetching wrapper over the stream for ``name``.

        Memoized, and backed by the *same* generator :meth:`get` would
        return — but the two access paths must not be mixed for one
        name: while a prefetched block is outstanding the raw
        generator's state lags the logical draw position (snapshots and
        forks re-synchronize automatically; ad-hoc ``get()`` draws do
        not).
        """
        if name not in self._buffered:
            self._buffered[name] = BufferedStream(self.get(name))
        return self._buffered[name]

    def spawn(self, name: str) -> "RandomStreams":
        """The child factory for ``name`` (memoized; disjoint streams)."""
        if name not in self._children:
            child = RandomStreams(self.seed)
            child._path = self._path + (name,)
            child._forks = self._forks
            self._children[name] = child
        return self._children[name]

    # -- forking -------------------------------------------------------------

    def fork(self, key: str) -> "RandomStreams":
        """Rebrand this factory (in place) as deterministic branch ``key``.

        Every existing generator in the spawn tree is reseeded from the
        forked derivation of its own path — in place, because live
        components hold references to those generator objects — and
        every stream or child created afterwards derives from the
        forked key space too.  Two factories restored from the same
        snapshot and forked with different keys therefore produce fully
        independent draws; forked with the same key they stay identical.
        Returns ``self`` for chaining.
        """
        self._apply_fork(key)
        return self

    def _apply_fork(self, key: str) -> None:
        self._forks = self._forks + (key,)
        # Prefetched blocks belong to the old seed: drop them without
        # restoring their pre-block states over the fresh reseed.
        for wrapper in self._buffered.values():
            wrapper.discard()
        for name, stream in self._streams.items():
            fresh_key = self._derive_key(self._path + (name,))
            fresh = np.random.default_rng(np.random.SeedSequence(fresh_key))
            stream.bit_generator.state = fresh.bit_generator.state
        for child in self._children.values():
            child._apply_fork(key)

    # -- snapshots ------------------------------------------------------------

    def state(self) -> dict[str, Any]:
        """A JSON-able snapshot of the whole spawn tree.

        Captures every generator's bit-generator state, so a stream
        that was never drawn from snapshots to exactly the state a
        fresh derivation would produce — restored and fresh factories
        are indistinguishable, drawn-from or not.

        Buffered wrappers are re-synchronized first, so the captured
        bit-generator states equal what scalar-path draws would have
        produced and the payload format is unchanged by prefetching.
        """
        for wrapper in self._buffered.values():
            wrapper.sync()
        return {
            "kind": "random-streams",
            "version": SNAPSHOT_VERSION,
            "seed": self.seed,
            "path": list(self._path),
            "forks": list(self._forks),
            "streams": {
                name: stream.bit_generator.state
                for name, stream in sorted(self._streams.items())
            },
            "children": {
                name: child.state()
                for name, child in sorted(self._children.items())
            },
        }

    @classmethod
    def from_state(cls, state: Mapping[str, Any]) -> "RandomStreams":
        """Rebuild a factory whose draws continue the snapshot exactly."""
        check_state(state, "random-streams")
        factory = cls(int(state["seed"]))
        factory._path = tuple(str(s) for s in state["path"])
        factory._forks = tuple(str(s) for s in state.get("forks", ()))
        for name, rng_state in state["streams"].items():
            stream = factory.get(str(name))
            stream.bit_generator.state = rng_state
        for name, child_state in state["children"].items():
            child = cls.from_state(child_state)
            factory._children[str(name)] = child
        return factory
