"""Deterministic random-number streams.

Every stochastic component in the repository draws from a named
substream derived from one root seed, so simulations are exactly
reproducible and independent components never share a stream (changing
how many samples one device draws cannot perturb another device).

Factories are :class:`~repro.snapshot.Snapshotable`: ``state()``
captures the seed, the namespace path, the fork lineage and every live
generator's bit-generator state across the whole spawn tree, and
``from_state`` rebuilds a factory whose future draws continue exactly
where the snapshot left off.  :meth:`RandomStreams.fork` rebrands a
warmed-up factory (in place, including generators components already
hold) as an independent deterministic branch: two forks of the same
snapshot agree on everything except their fork keys.
"""

from __future__ import annotations

from typing import Any, Mapping

import numpy as np

from ..snapshot import SNAPSHOT_VERSION, check_state

__all__ = ["RandomStreams"]

#: Domain separator mixed into derivation keys of forked factories.  A
#: legacy (unforked) key is ``[seed] + encoded-path`` whose second
#: element is a segment *byte length* (< 2**32 but realistically tiny);
#: this tag is far outside that range, so forked and unforked key spaces
#: cannot collide.
_FORK_TAG = 0x464F524B2D544147  # ASCII "FORK-TAG"


def _encode_path(path: tuple[str, ...]) -> list[int]:
    """Encode a stream path as an unambiguous flat key sequence.

    Each segment is rendered as its UTF-8 byte length followed by the
    byte values (a prefix code), so distinct paths can never flatten to
    the same key — ``("a", "b/c")`` encodes to ``[1, 97, 3, 98, 47, 99]``
    while ``("a/b", "c")`` encodes to ``[3, 97, 47, 98, 1, 99]``.  The
    naive per-character encoding this replaces collapsed both to the
    characters of ``"a/b/c"``, silently aliasing streams that sharded
    experiment replicas rely on being disjoint.
    """
    key: list[int] = []
    for segment in path:
        data = segment.encode("utf-8")
        key.append(len(data))
        key.extend(data)
    return key


class RandomStreams:
    """A factory of independent, named ``numpy.random.Generator`` streams.

    Streams are derived from ``(root_seed, path)`` so the same path
    always yields the same stream regardless of creation order::

        streams = RandomStreams(seed=7)
        disk_rng = streams.get("disk.0")
        net_rng = streams.get("network")

    Every ``spawn()`` / ``get()`` name is one opaque path *segment* —
    segment boundaries are part of the stream identity.  Consequently
    ``spawn("a").get("b/c")``, ``spawn("a/b").get("c")`` and
    ``get("a/b/c")`` are three mutually disjoint streams: a ``"/"``
    inside a name is just a character, not a namespace hop.

    ``spawn`` is memoized: spawning the same name twice returns the
    *same* child factory, so every component holding "the stream at
    path P" holds the same generator object.  (Unmemoized spawns used
    to hand out duplicate generators for one path — two objects with
    identical seeds advancing independently — which snapshots could not
    represent and restores could not reconcile.)
    """

    def __init__(self, seed: int = 0, prefix: str = ""):
        self.seed = int(seed)
        self._path: tuple[str, ...] = (prefix,) if prefix else ()
        self._forks: tuple[str, ...] = ()
        self._streams: dict[str, np.random.Generator] = {}
        self._children: dict[str, "RandomStreams"] = {}

    @property
    def prefix(self) -> str:
        """Human-readable namespace path (diagnostic only)."""
        return "/".join(self._path)

    @property
    def forks(self) -> tuple[str, ...]:
        """The fork keys applied to this factory, oldest first."""
        return self._forks

    def _derive_key(self, path: tuple[str, ...]) -> list[int]:
        """The SeedSequence entropy key for a stream at ``path``.

        Unforked factories keep the historic ``[seed] + path`` layout
        (so existing runs reproduce bit-for-bit); forked factories mix
        in a domain tag plus the fork lineage ahead of the path.
        """
        if not self._forks:
            return [self.seed] + _encode_path(path)
        return (
            [self.seed, _FORK_TAG]
            + _encode_path(self._forks)
            + _encode_path(path)
        )

    def get(self, name: str) -> np.random.Generator:
        """Return (creating if needed) the stream for ``name``."""
        if name not in self._streams:
            key = self._derive_key(self._path + (name,))
            self._streams[name] = np.random.default_rng(np.random.SeedSequence(key))
        return self._streams[name]

    def spawn(self, name: str) -> "RandomStreams":
        """The child factory for ``name`` (memoized; disjoint streams)."""
        if name not in self._children:
            child = RandomStreams(self.seed)
            child._path = self._path + (name,)
            child._forks = self._forks
            self._children[name] = child
        return self._children[name]

    # -- forking -------------------------------------------------------------

    def fork(self, key: str) -> "RandomStreams":
        """Rebrand this factory (in place) as deterministic branch ``key``.

        Every existing generator in the spawn tree is reseeded from the
        forked derivation of its own path — in place, because live
        components hold references to those generator objects — and
        every stream or child created afterwards derives from the
        forked key space too.  Two factories restored from the same
        snapshot and forked with different keys therefore produce fully
        independent draws; forked with the same key they stay identical.
        Returns ``self`` for chaining.
        """
        self._apply_fork(key)
        return self

    def _apply_fork(self, key: str) -> None:
        self._forks = self._forks + (key,)
        for name, stream in self._streams.items():
            fresh_key = self._derive_key(self._path + (name,))
            fresh = np.random.default_rng(np.random.SeedSequence(fresh_key))
            stream.bit_generator.state = fresh.bit_generator.state
        for child in self._children.values():
            child._apply_fork(key)

    # -- snapshots ------------------------------------------------------------

    def state(self) -> dict[str, Any]:
        """A JSON-able snapshot of the whole spawn tree.

        Captures every generator's bit-generator state, so a stream
        that was never drawn from snapshots to exactly the state a
        fresh derivation would produce — restored and fresh factories
        are indistinguishable, drawn-from or not.
        """
        return {
            "kind": "random-streams",
            "version": SNAPSHOT_VERSION,
            "seed": self.seed,
            "path": list(self._path),
            "forks": list(self._forks),
            "streams": {
                name: stream.bit_generator.state
                for name, stream in sorted(self._streams.items())
            },
            "children": {
                name: child.state()
                for name, child in sorted(self._children.items())
            },
        }

    @classmethod
    def from_state(cls, state: Mapping[str, Any]) -> "RandomStreams":
        """Rebuild a factory whose draws continue the snapshot exactly."""
        check_state(state, "random-streams")
        factory = cls(int(state["seed"]))
        factory._path = tuple(str(s) for s in state["path"])
        factory._forks = tuple(str(s) for s in state.get("forks", ()))
        for name, rng_state in state["streams"].items():
            stream = factory.get(str(name))
            stream.bit_generator.state = rng_state
        for name, child_state in state["children"].items():
            child = cls.from_state(child_state)
            factory._children[str(name)] = child
        return factory
