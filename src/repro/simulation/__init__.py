"""Discrete-event simulation substrate.

A compact generator-based simulation kernel (:class:`Environment`,
:class:`Process`, :class:`Event`), shared resources (:class:`Resource`,
:class:`Store`) and deterministic random streams
(:class:`RandomStreams`).  All datacenter device and application models
in :mod:`repro.datacenter` run on this engine.
"""

from .checkpoint import engine_digest, verify_engine_digest
from .engine import (
    AllOf,
    AnyOf,
    Environment,
    Event,
    Interrupt,
    Process,
    SimulationError,
    Timeout,
)
from .parallel import available_workers, resolve_workers, run_sharded
from .resources import Request, Resource, Store, UtilizationMeter
from .rng import RandomStreams

__all__ = [
    "AllOf",
    "AnyOf",
    "Environment",
    "Event",
    "Interrupt",
    "Process",
    "Request",
    "Resource",
    "RandomStreams",
    "SimulationError",
    "Store",
    "Timeout",
    "UtilizationMeter",
    "available_workers",
    "engine_digest",
    "resolve_workers",
    "run_sharded",
    "verify_engine_digest",
]
