"""Sharded parallel execution of independent simulation replicas.

Trace-collection sweeps repeat the same single-process simulation many
times with different substreams; nothing couples the replicas, so they
shard perfectly across worker processes.  This module provides the
process-pool plumbing, deliberately decoupled from any particular
workload: callers hand it a picklable worker function plus a list of
picklable per-replica specs and get results back *in spec order*,
independent of which worker finished first.

Determinism is the caller's contract: a worker must derive all of its
randomness from its spec (e.g. a :class:`~repro.simulation.rng.RandomStreams`
path keyed by replica index), never from process-global state — then the
result for spec ``k`` is bit-identical whether the pool has one worker
or sixteen.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor, as_completed
from typing import Callable, Optional, Sequence, TypeVar

__all__ = ["available_workers", "resolve_workers", "run_sharded"]

SpecT = TypeVar("SpecT")
ResultT = TypeVar("ResultT")


def available_workers() -> int:
    """Number of usable worker processes on this machine."""
    return os.cpu_count() or 1


def resolve_workers(workers: int, n_tasks: int) -> int:
    """Clamp a requested worker count to something sensible.

    ``workers <= 0`` means "use all available cores".  The result never
    exceeds the number of tasks (extra processes would only add fork
    cost) and is always at least one.
    """
    if workers <= 0:
        workers = available_workers()
    return max(1, min(workers, n_tasks))


def run_sharded(
    worker: Callable[[SpecT], ResultT],
    specs: Sequence[SpecT],
    workers: int = 1,
    on_result: Optional[Callable[[int, ResultT], None]] = None,
) -> list[ResultT]:
    """Run ``worker`` over every spec, fanned across processes.

    ``worker`` and each spec must be picklable (a module-level function
    and frozen dataclasses work; lambdas and closures do not).  Results
    are returned in the same order as ``specs``.  With one (effective)
    worker everything runs inline in this process — no pool, no pickle
    round-trip — which is also the deterministic reference path the
    multi-worker result is validated against.

    ``on_result(index, result)``, when given, fires in this process as
    each spec's result lands — in *completion* order for a real pool —
    so callers can report progress (e.g. "shard k persisted") while
    slower shards are still running.  The final list is spec-ordered
    either way.

    The first worker exception observed propagates to the caller.
    """
    specs = list(specs)
    if not specs:
        return []
    n_workers = resolve_workers(workers, len(specs))
    if n_workers == 1:
        results = []
        for index, spec in enumerate(specs):
            result = worker(spec)
            results.append(result)
            if on_result is not None:
                on_result(index, result)
        return results
    with ProcessPoolExecutor(max_workers=n_workers) as pool:
        if on_result is None:
            # pool.map preserves input order regardless of completion order.
            return list(pool.map(worker, specs))
        index_of = {
            pool.submit(worker, spec): index
            for index, spec in enumerate(specs)
        }
        results: list[Optional[ResultT]] = [None] * len(specs)
        for future in as_completed(index_of):
            index = index_of[future]
            results[index] = future.result()
            on_result(index, results[index])
        return results
