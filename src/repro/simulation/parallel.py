"""Sharded parallel execution of independent simulation replicas.

Trace-collection sweeps repeat the same single-process simulation many
times with different substreams; nothing couples the replicas, so they
shard perfectly across worker processes.  This module provides the
process-pool plumbing, deliberately decoupled from any particular
workload: callers hand it a picklable worker function plus a list of
picklable per-replica specs and get results back *in spec order*,
independent of which worker finished first.

Determinism is the caller's contract: a worker must derive all of its
randomness from its spec (e.g. a :class:`~repro.simulation.rng.RandomStreams`
path keyed by replica index), never from process-global state — then the
result for spec ``k`` is bit-identical whether the pool has one worker
or sixteen.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Sequence, TypeVar

__all__ = ["available_workers", "resolve_workers", "run_sharded"]

SpecT = TypeVar("SpecT")
ResultT = TypeVar("ResultT")


def available_workers() -> int:
    """Number of usable worker processes on this machine."""
    return os.cpu_count() or 1


def resolve_workers(workers: int, n_tasks: int) -> int:
    """Clamp a requested worker count to something sensible.

    ``workers <= 0`` means "use all available cores".  The result never
    exceeds the number of tasks (extra processes would only add fork
    cost) and is always at least one.
    """
    if workers <= 0:
        workers = available_workers()
    return max(1, min(workers, n_tasks))


def run_sharded(
    worker: Callable[[SpecT], ResultT],
    specs: Sequence[SpecT],
    workers: int = 1,
) -> list[ResultT]:
    """Run ``worker`` over every spec, fanned across processes.

    ``worker`` and each spec must be picklable (a module-level function
    and frozen dataclasses work; lambdas and closures do not).  Results
    are returned in the same order as ``specs``.  With one (effective)
    worker everything runs inline in this process — no pool, no pickle
    round-trip — which is also the deterministic reference path the
    multi-worker result is validated against.

    The first worker exception, if any, propagates to the caller.
    """
    specs = list(specs)
    if not specs:
        return []
    n_workers = resolve_workers(workers, len(specs))
    if n_workers == 1:
        return [worker(spec) for spec in specs]
    with ProcessPoolExecutor(max_workers=n_workers) as pool:
        # pool.map preserves input order regardless of completion order.
        return list(pool.map(worker, specs))
