"""Request-class mixes and file-access patterns for the GFS workload.

A :class:`RequestClass` fixes the op/size/memory footprint of one kind
of user request; a :class:`WorkloadMix` samples classes by weight and
drives a per-class :class:`FileAccessPattern` that decides where on
disk each request lands (sequential runs with occasional jumps — the
spatial locality the storage Markov model learns as LBN ranges).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..datacenter.gfs import GfsRequest
from ..tracing import READ, WRITE

__all__ = [
    "FileAccessPattern",
    "RequestClass",
    "WorkloadMix",
    "oltp_mix",
    "table2_mix",
    "web_serving_mix",
]

KIB = 1024
MIB = 1024 * 1024


@dataclass(frozen=True)
class RequestClass:
    """One kind of user request (fixed footprint, like Table 2's rows)."""

    name: str
    op: str  # READ | WRITE
    size_bytes: int
    memory_bytes: int
    weight: float = 1.0
    mean_run_length: float = 4.0  # requests per sequential run
    working_set_blocks: int = 1 << 24  # span of the class's file region

    @property
    def memory_op(self) -> str:
        """Reads stage data into buffers (read); writes dirty them."""
        return READ if self.op == READ else WRITE


class FileAccessPattern:
    """Stateful LBN chooser: sequential runs with random jumps.

    With probability ``1/mean_run_length`` a request seeks to a random
    position in the class's working set; otherwise it continues
    sequentially after the previous request.
    """

    def __init__(
        self, request_class: RequestClass, rng: np.random.Generator, base_lbn: int = 0
    ):
        self.request_class = request_class
        self.rng = rng
        self.base_lbn = base_lbn
        self._next_lbn = base_lbn

    def next_lbn(self, size_bytes: int, block_size: int = 4096) -> int:
        """LBN for the next request of this class."""
        rc = self.request_class
        jump_probability = 1.0 / max(1.0, rc.mean_run_length)
        if self.rng.random() < jump_probability:
            offset = int(self.rng.integers(0, rc.working_set_blocks))
            self._next_lbn = self.base_lbn + offset
        lbn = self._next_lbn
        self._next_lbn += max(1, -(-size_bytes // block_size))
        return lbn


class WorkloadMix:
    """Samples :class:`GfsRequest` objects from weighted request classes."""

    def __init__(self, classes: list[RequestClass], rng: np.random.Generator):
        if not classes:
            raise ValueError("need at least one request class")
        names = [c.name for c in classes]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate class names in {names}")
        self.classes = classes
        self.rng = rng
        weights = np.array([c.weight for c in classes], dtype=float)
        if np.any(weights < 0) or weights.sum() <= 0:
            raise ValueError("class weights must be non-negative, not all zero")
        self._probabilities = weights / weights.sum()
        # ``Generator.choice(n, p=p)`` normalizes p, builds the cdf and
        # searches it on every call (~50us); precomputing the cdf once
        # and searching it against one raw double draws the identical
        # index sequence from the identical bit-generator state.
        self._cdf = self._probabilities.cumsum()
        self._cdf /= self._cdf[-1]
        # Separate each class's file region so classes do not thrash each
        # other's sequential streams.
        self._patterns = {
            c.name: FileAccessPattern(c, rng, base_lbn=i * (1 << 25))
            for i, c in enumerate(classes)
        }

    def sample_class(self) -> RequestClass:
        """Draw a request class according to the mix weights."""
        index = self._cdf.searchsorted(self.rng.random(), side="right")
        return self.classes[int(index)]

    def make_request(self) -> GfsRequest:
        """Draw one complete GFS request."""
        rc = self.sample_class()
        lbn = self._patterns[rc.name].next_lbn(rc.size_bytes)
        return GfsRequest(
            request_class=rc.name,
            op=rc.op,
            size_bytes=rc.size_bytes,
            lbn=lbn,
            memory_bytes=rc.memory_bytes,
            memory_op=rc.memory_op,
        )


def table2_mix(rng: np.random.Generator) -> WorkloadMix:
    """The paper's Table 2 workload: a 64 KiB read and a 4 MiB write.

    Request 1: network 64K, memory 16K read, storage 64K read.
    Request 2: network 4MB, memory 256KB write, storage 4MB write.
    """
    return WorkloadMix(
        [
            RequestClass(
                name="read_64K",
                op=READ,
                size_bytes=64 * KIB,
                memory_bytes=16 * KIB,
                weight=0.6,
                mean_run_length=1.2,
            ),
            RequestClass(
                name="write_4M",
                op=WRITE,
                size_bytes=4 * MIB,
                memory_bytes=256 * KIB,
                weight=0.4,
                mean_run_length=2.0,
            ),
        ],
        rng,
    )


def web_serving_mix(rng: np.random.Generator) -> WorkloadMix:
    """A read-heavy static web-serving profile (small/medium objects)."""
    return WorkloadMix(
        [
            RequestClass("read_4K", READ, 4 * KIB, 4 * KIB, weight=0.45,
                         mean_run_length=1.5),
            RequestClass("read_64K", READ, 64 * KIB, 16 * KIB, weight=0.35,
                         mean_run_length=6.0),
            RequestClass("read_1M", READ, 1 * MIB, 64 * KIB, weight=0.15,
                         mean_run_length=12.0),
            RequestClass("write_256K", WRITE, 256 * KIB, 64 * KIB, weight=0.05,
                         mean_run_length=2.0),
        ],
        rng,
    )


def oltp_mix(rng: np.random.Generator) -> WorkloadMix:
    """An OLTP-like profile: small random reads/writes, 2:1 read:write."""
    return WorkloadMix(
        [
            RequestClass("read_8K", READ, 8 * KIB, 8 * KIB, weight=0.67,
                         mean_run_length=1.0, working_set_blocks=1 << 22),
            RequestClass("write_8K", WRITE, 8 * KIB, 8 * KIB, weight=0.33,
                         mean_run_length=1.0, working_set_blocks=1 << 22),
        ],
        rng,
    )
