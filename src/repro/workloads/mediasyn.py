"""MediSyn-style streaming-media workload generation (Tang et al.).

Models the long-term behaviour of a streaming service: Zipf object
popularity with new-content introduction over time, a diurnal
(non-stationary) arrival rate, lognormal session durations with
partial viewing — the non-stationarity/burstiness/duration triple the
paper cites Tang et al. for.  Sessions can be materialized as a
timestamped list or converted into GFS read requests to drive the
simulated cluster.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..datacenter.gfs import GfsRequest
from ..tracing import READ

__all__ = ["MediaSession", "MediSynSpec", "MediSynWorkload"]


@dataclass(frozen=True)
class MediSynSpec:
    """Parameters of the synthetic media workload."""

    n_objects: int = 200
    zipf_alpha: float = 0.8  # popularity skew
    base_rate: float = 10.0  # sessions/s at the diurnal mean
    diurnal_period: float = 240.0  # "day" length in simulated seconds
    diurnal_amplitude: float = 0.6  # peak-to-mean swing, in [0, 1)
    new_object_rate: float = 0.05  # objects introduced per second
    mean_duration: float = 20.0  # seconds of content streamed
    duration_sigma: float = 1.0  # lognormal shape
    full_view_probability: float = 0.3  # watch to the end
    bitrate: float = 500e3  # bytes/s of content

    def __post_init__(self) -> None:
        if self.n_objects < 1:
            raise ValueError("need >= 1 object")
        if not 0.0 <= self.diurnal_amplitude < 1.0:
            raise ValueError("diurnal amplitude must be in [0, 1)")
        if self.base_rate <= 0 or self.mean_duration <= 0:
            raise ValueError("rates and durations must be positive")


@dataclass(slots=True)
class MediaSession:
    """One client streaming session."""

    start_time: float
    object_id: int
    duration: float
    bytes_streamed: int


class MediSynWorkload:
    """Generates sessions; optionally converts them to GFS requests."""

    def __init__(self, spec: MediSynSpec, rng: np.random.Generator):
        self.spec = spec
        self.rng = rng

    def _rate_at(self, t: float) -> float:
        """Diurnal arrival rate: sinusoid around the base rate."""
        spec = self.spec
        phase = 2.0 * np.pi * t / spec.diurnal_period
        return spec.base_rate * (1.0 + spec.diurnal_amplitude * np.sin(phase))

    def _catalog_size(self, t: float) -> int:
        """Objects available at time t (new content keeps arriving)."""
        spec = self.spec
        return spec.n_objects + int(spec.new_object_rate * t)

    def _pick_object(self, t: float) -> int:
        """Zipf-popular object, preferring recently introduced content."""
        spec = self.spec
        catalog = self._catalog_size(t)
        rank = int(self.rng.zipf(1.0 + spec.zipf_alpha))
        rank = min(rank, catalog)
        # Rank 1 = the newest object: popularity follows recency.
        return catalog - rank

    def _duration(self) -> float:
        spec = self.spec
        if self.rng.random() < spec.full_view_probability:
            return spec.mean_duration
        # Partial viewing: lognormal early-abort behaviour.
        mu = np.log(spec.mean_duration) - spec.duration_sigma**2 / 2.0
        return float(
            min(
                self.rng.lognormal(mu, spec.duration_sigma),
                spec.mean_duration,
            )
        )

    def sessions(self, n: int) -> list[MediaSession]:
        """Generate ``n`` sessions via a thinned non-homogeneous Poisson
        process over the diurnal rate."""
        if n < 1:
            raise ValueError(f"need n >= 1, got {n}")
        spec = self.spec
        peak = spec.base_rate * (1.0 + spec.diurnal_amplitude)
        out: list[MediaSession] = []
        t = 0.0
        while len(out) < n:
            t += float(self.rng.exponential(1.0 / peak))
            if self.rng.random() > self._rate_at(t) / peak:
                continue  # thinning reject
            duration = self._duration()
            out.append(
                MediaSession(
                    start_time=t,
                    object_id=self._pick_object(t),
                    duration=duration,
                    bytes_streamed=max(1, int(duration * spec.bitrate)),
                )
            )
        return out

    def to_gfs_requests(
        self, sessions: list[MediaSession], chunk_bytes: int = 1 << 20
    ) -> list[tuple[float, GfsRequest]]:
        """(start_time, request) pairs: each session reads its object.

        Objects map to disjoint file regions, so popularity skew shows
        up as spatial locality on disk.
        """
        out = []
        for session in sessions:
            size = min(session.bytes_streamed, 64 << 20)
            lbn = session.object_id * (chunk_bytes // 4096) * 64
            out.append(
                (
                    session.start_time,
                    GfsRequest(
                        request_class="media_stream",
                        op=READ,
                        size_bytes=size,
                        lbn=lbn,
                        memory_bytes=max(4096, size // 16),
                    ),
                )
            )
        return out

    def popularity_histogram(
        self, sessions: list[MediaSession]
    ) -> np.ndarray:
        """Access counts per object, sorted descending (Zipf check)."""
        counts = np.bincount([s.object_id for s in sessions])
        return np.sort(counts)[::-1]
