"""Workload clients: open-loop and closed-loop request drivers.

Clients are application-agnostic: they call a ``submit`` function that
returns a request-servicing generator (e.g.
``lambda req: cluster.client_request(req)``) and a ``request_factory``
that makes request objects (e.g. ``mix.make_request``).
"""

from __future__ import annotations

from typing import Any, Callable, Generator

import numpy as np

from ..queueing import ArrivalProcess
from ..simulation import Environment, Process

__all__ = ["ClosedLoopClient", "OpenLoopClient"]

SubmitFn = Callable[[Any], Generator]
RequestFactory = Callable[[], Any]


class OpenLoopClient:
    """Fires requests at arrival-process times regardless of completions.

    Open-loop injection is what the paper's network queueing model
    represents: the arrival rate is a property of the user population,
    not of the system's speed.
    """

    def __init__(
        self,
        env: Environment,
        submit: SubmitFn,
        request_factory: RequestFactory,
        arrivals: ArrivalProcess,
    ):
        self.env = env
        self.submit = submit
        self.request_factory = request_factory
        self.arrivals = arrivals
        self.issued = 0

    def start(self, n_requests: int) -> Process:
        """Begin injecting ``n_requests``; returns the source process."""
        if n_requests < 1:
            raise ValueError(f"need >= 1 request, got {n_requests}")
        return self.env.process(self._source(n_requests))

    def _source(self, n_requests: int):
        for _ in range(n_requests):
            yield self.env.timeout(self.arrivals.next_interarrival())
            self.env.process(self.submit(self.request_factory()))
            self.issued += 1


class ClosedLoopClient:
    """``n_users`` users alternating requests and think times.

    Throughput self-adjusts to system speed — the interactive-user
    regime of the SURGE model family.
    """

    def __init__(
        self,
        env: Environment,
        submit: SubmitFn,
        request_factory: RequestFactory,
        n_users: int,
        think_time_sampler: Callable[[np.random.Generator], float],
        rng: np.random.Generator,
    ):
        if n_users < 1:
            raise ValueError(f"need >= 1 user, got {n_users}")
        self.env = env
        self.submit = submit
        self.request_factory = request_factory
        self.n_users = n_users
        self.think_time_sampler = think_time_sampler
        self.rng = rng
        self.completed = 0

    def start(self, requests_per_user: int) -> list[Process]:
        """Launch all users; returns their processes (joinable)."""
        if requests_per_user < 1:
            raise ValueError(f"need >= 1 request/user, got {requests_per_user}")
        return [
            self.env.process(self._user(requests_per_user))
            for _ in range(self.n_users)
        ]

    def _user(self, requests_per_user: int):
        for _ in range(requests_per_user):
            yield self.env.process(self.submit(self.request_factory()))
            self.completed += 1
            think = float(self.think_time_sampler(self.rng))
            if think > 0:
                yield self.env.timeout(think)
