"""Workload generation: request mixes and client drivers.

Request-class mixes (including the paper's Table 2 workload), open- and
closed-loop clients, and the SURGE user-equivalent model.
"""

from .clients import ClosedLoopClient, OpenLoopClient
from .mixes import (
    FileAccessPattern,
    RequestClass,
    WorkloadMix,
    oltp_mix,
    table2_mix,
    web_serving_mix,
)
from .mediasyn import MediaSession, MediSynSpec, MediSynWorkload
from .surge import SurgeSpec, SurgeWorkload

__all__ = [
    "ClosedLoopClient",
    "FileAccessPattern",
    "MediaSession",
    "MediSynSpec",
    "MediSynWorkload",
    "OpenLoopClient",
    "RequestClass",
    "SurgeSpec",
    "SurgeWorkload",
    "WorkloadMix",
    "oltp_mix",
    "table2_mix",
    "web_serving_mix",
]
