"""SURGE-style user-equivalent workload (Barford & Crovella).

The paper's network-modeling survey (Joo et al.) contrasts an
infinite-source constant-transfer model with a SURGE model, where
traffic varies per user: each *user equivalent* alternates between
fetching a page (several embedded objects with heavy-tailed sizes) and
thinking.  This module provides that generator for the simulated
cluster, so the infinite-source-vs-SURGE comparison can be rerun.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..datacenter.gfs import GfsRequest
from ..simulation import Environment, Process
from ..tracing import READ

__all__ = ["SurgeSpec", "SurgeWorkload"]


@dataclass(frozen=True)
class SurgeSpec:
    """Parameters of the SURGE user-equivalent model.

    Object sizes are Pareto (heavy-tailed, the hallmark finding of the
    SURGE work); objects-per-page is geometric; think times are Pareto
    as in the original inactive-off-time fits.
    """

    user_equivalents: int = 16
    pages_per_session: int = 20
    mean_objects_per_page: float = 4.0
    object_size_alpha: float = 1.3  # Pareto shape (infinite variance < 2)
    object_size_min: int = 4096  # bytes
    object_size_cap: int = 8 << 20  # truncate the tail at 8 MiB
    think_time_alpha: float = 1.5
    think_time_min: float = 0.05  # seconds
    think_time_cap: float = 30.0
    memory_fraction: float = 0.25  # buffer footprint vs object size


class SurgeWorkload:
    """Drives a cluster with SURGE user equivalents."""

    def __init__(
        self,
        env: Environment,
        submit,
        spec: SurgeSpec,
        rng: np.random.Generator,
    ):
        if spec.user_equivalents < 1:
            raise ValueError("need >= 1 user equivalent")
        self.env = env
        self.submit = submit
        self.spec = spec
        self.rng = rng
        self.objects_fetched = 0

    def _pareto(self, alpha: float, minimum: float, cap: float) -> float:
        value = minimum * (1.0 + self.rng.pareto(alpha))
        return float(min(value, cap))

    def _object_size(self) -> int:
        return int(
            self._pareto(
                self.spec.object_size_alpha,
                self.spec.object_size_min,
                self.spec.object_size_cap,
            )
        )

    def _think_time(self) -> float:
        return self._pareto(
            self.spec.think_time_alpha,
            self.spec.think_time_min,
            self.spec.think_time_cap,
        )

    def _objects_per_page(self) -> int:
        p = 1.0 / self.spec.mean_objects_per_page
        return int(self.rng.geometric(p))

    def start(self) -> list[Process]:
        """Launch every user equivalent; returns their processes."""
        return [
            self.env.process(self._user(i))
            for i in range(self.spec.user_equivalents)
        ]

    def _user(self, user_index: int):
        # Each user reads its own file region, giving per-user locality.
        base_lbn = user_index * (1 << 24)
        position = base_lbn
        for _ in range(self.spec.pages_per_session):
            for _ in range(self._objects_per_page()):
                size = self._object_size()
                request = GfsRequest(
                    request_class="surge_object",
                    op=READ,
                    size_bytes=size,
                    lbn=position,
                    memory_bytes=max(
                        4096, int(size * self.spec.memory_fraction)
                    ),
                )
                position += max(1, -(-size // 4096))
                yield self.env.process(self.submit(request))
                self.objects_fetched += 1
            yield self.env.timeout(self._think_time())
