"""Arrival processes for open-loop workload generation.

The paper's network model is "a simple queueing model to represent the
arrival-rate of user-requests"; Sengupta et al. (its network-modeling
survey) stress that real DC traffic often diverges from Poisson.  This
module provides the spectrum used in the benches: deterministic,
Poisson, empirical (trace bootstrap), Markov-modulated Poisson (bursty)
and a multiplicative-cascade self-similar process.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = [
    "ArrivalProcess",
    "BModelArrivals",
    "DeterministicArrivals",
    "DistributionArrivals",
    "EmpiricalArrivals",
    "MMPPArrivals",
    "PoissonArrivals",
]


class ArrivalProcess:
    """Base class: a stream of interarrival times.

    Subclasses implement :meth:`next_interarrival`; :meth:`sample`
    vectorizes it for fitting and analysis.
    """

    def next_interarrival(self) -> float:
        raise NotImplementedError

    def sample(self, n: int) -> np.ndarray:
        """Draw ``n`` consecutive interarrival times."""
        return np.array([self.next_interarrival() for _ in range(n)])

    @property
    def mean_rate(self) -> float:
        """Long-run arrivals per unit time."""
        raise NotImplementedError


class DeterministicArrivals(ArrivalProcess):
    """Evenly spaced arrivals at a fixed rate."""

    def __init__(self, rate: float):
        if rate <= 0:
            raise ValueError(f"rate must be > 0, got {rate}")
        self.rate = rate

    def next_interarrival(self) -> float:
        return 1.0 / self.rate

    @property
    def mean_rate(self) -> float:
        return self.rate


class PoissonArrivals(ArrivalProcess):
    """Memoryless arrivals: exponential interarrival times."""

    def __init__(self, rate: float, rng: np.random.Generator):
        if rate <= 0:
            raise ValueError(f"rate must be > 0, got {rate}")
        self.rate = rate
        self.rng = rng

    def next_interarrival(self) -> float:
        return float(self.rng.exponential(1.0 / self.rate))

    @property
    def mean_rate(self) -> float:
        return self.rate


class DistributionArrivals(ArrivalProcess):
    """Interarrivals drawn i.i.d. from a frozen scipy distribution."""

    def __init__(self, distribution, rng: np.random.Generator):
        self.distribution = distribution
        self.rng = rng
        self._mean = float(distribution.mean())
        if not np.isfinite(self._mean) or self._mean <= 0:
            raise ValueError("distribution must have a positive finite mean")

    def next_interarrival(self) -> float:
        return float(max(0.0, self.distribution.rvs(random_state=self.rng)))

    @property
    def mean_rate(self) -> float:
        return 1.0 / self._mean


class EmpiricalArrivals(ArrivalProcess):
    """Bootstrap resampling of observed interarrival times."""

    def __init__(self, interarrivals: Sequence[float], rng: np.random.Generator):
        samples = np.asarray(interarrivals, dtype=float)
        if samples.size == 0:
            raise ValueError("need at least one observed interarrival")
        if np.any(samples < 0):
            raise ValueError("interarrival times must be non-negative")
        self.samples = samples
        self.rng = rng

    def next_interarrival(self) -> float:
        return float(self.samples[self.rng.integers(0, self.samples.size)])

    @property
    def mean_rate(self) -> float:
        return 1.0 / float(self.samples.mean())


class MMPPArrivals(ArrivalProcess):
    """Two-state Markov-modulated Poisson process.

    Alternates between a quiet and a bursty phase with exponentially
    distributed sojourns — the standard parsimonious model for the
    bursty, non-Poisson traffic Sengupta et al. observe.
    """

    def __init__(
        self,
        rates: Sequence[float],
        mean_sojourns: Sequence[float],
        rng: np.random.Generator,
    ):
        self.rates = [float(r) for r in rates]
        self.mean_sojourns = [float(s) for s in mean_sojourns]
        if len(self.rates) != 2 or len(self.mean_sojourns) != 2:
            raise ValueError("MMPP here is two-state: pass 2 rates, 2 sojourns")
        if min(self.rates) <= 0 or min(self.mean_sojourns) <= 0:
            raise ValueError("rates and sojourns must be positive")
        self.rng = rng
        self._state = 0
        self._time_to_switch = float(rng.exponential(self.mean_sojourns[0]))

    def next_interarrival(self) -> float:
        elapsed = 0.0
        while True:
            gap = float(self.rng.exponential(1.0 / self.rates[self._state]))
            if gap < self._time_to_switch:
                self._time_to_switch -= gap
                return elapsed + gap
            # Phase switches before the next arrival: spend the
            # remaining sojourn, flip state, redraw in the new phase.
            elapsed += self._time_to_switch
            self._state = 1 - self._state
            self._time_to_switch = float(
                self.rng.exponential(self.mean_sojourns[self._state])
            )

    @property
    def mean_rate(self) -> float:
        s0, s1 = self.mean_sojourns
        p0 = s0 / (s0 + s1)
        return p0 * self.rates[0] + (1 - p0) * self.rates[1]


class BModelArrivals(ArrivalProcess):
    """Self-similar arrivals via a multiplicative b-model cascade.

    A horizon of ``horizon`` seconds carrying ``rate * horizon``
    arrivals is split recursively, each split sending fraction ``bias``
    of the mass to a random half.  ``bias = 0.5`` degenerates to
    near-uniform traffic; values toward 0.9 produce strong burstiness
    and long-range dependence, matching the self-similarity reported
    for DC request streams.
    """

    def __init__(
        self,
        rate: float,
        rng: np.random.Generator,
        bias: float = 0.75,
        horizon: float = 60.0,
        depth: int = 12,
    ):
        if rate <= 0:
            raise ValueError(f"rate must be > 0, got {rate}")
        if not 0.5 <= bias < 1.0:
            raise ValueError(f"bias must be in [0.5, 1), got {bias}")
        self.rate = rate
        self.bias = bias
        self.horizon = horizon
        self.depth = depth
        self.rng = rng
        self._pending: list[float] = []
        self._last_arrival = 0.0
        self._epoch_start = 0.0

    def _generate_epoch(self) -> None:
        total = max(1, int(round(self.rate * self.horizon)))
        counts = np.array([float(total)])
        for _ in range(self.depth):
            left = np.where(
                self.rng.random(counts.size) < 0.5, self.bias, 1.0 - self.bias
            )
            counts = np.concatenate([counts * left, counts * (1.0 - left)])
            # Interleave so left/right halves alternate correctly.
            counts = counts.reshape(2, -1).T.ravel()
        cell = self.horizon / counts.size
        arrivals = []
        for i, c in enumerate(self.rng.poisson(counts)):
            if c > 0:
                offsets = self.rng.random(c) * cell
                arrivals.extend(self._epoch_start + i * cell + np.sort(offsets))
        self._epoch_start += self.horizon
        if not arrivals:
            # Degenerate epoch with zero arrivals: recurse into the next.
            self._generate_epoch()
            return
        self._pending = list(arrivals)

    def next_interarrival(self) -> float:
        while not self._pending:
            self._generate_epoch()
        arrival = self._pending.pop(0)
        gap = arrival - self._last_arrival
        self._last_arrival = arrival
        return max(0.0, gap)

    @property
    def mean_rate(self) -> float:
        return self.rate
