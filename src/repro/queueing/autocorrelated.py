"""Autocorrelation-matching arrival generation (Li's second phase).

Li's grid-workload pipeline fits marginal distributions *and then*
"generates autocorrelations that match the real data to create
synthetic workloads" — precisely what a renewal (i.i.d.) interarrival
model cannot do, and why it fails on self-similar traffic (see the A7
bench).  :class:`CopulaArrivals` implements the standard fix: a
Gaussian copula whose latent AR(p) process matches the interarrival
autocorrelation, pushed through the empirical marginal so interarrival
*values* keep their exact distribution while their *ordering* keeps
its correlation structure.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np
from scipy import stats

from ..stats import acf
from .arrivals import ArrivalProcess

__all__ = ["CopulaArrivals", "fit_ar_coefficients"]


def fit_ar_coefficients(series: Sequence[float], order: int) -> np.ndarray:
    """Yule-Walker AR(p) coefficients from a (latent) series.

    Solves the Toeplitz system R a = r over autocorrelations.  The
    returned coefficients are clipped to a stationary solution by
    shrinking toward zero if the companion-matrix spectral radius
    reaches 1.
    """
    if order < 1:
        raise ValueError(f"order must be >= 1, got {order}")
    data = np.asarray(series, dtype=float)
    if data.size < 4 * order:
        raise ValueError(f"need >= {4 * order} samples, got {data.size}")
    rho = acf(data, max_lag=order)
    R = np.array([[rho[abs(i - j)] for j in range(order)] for i in range(order)])
    r = rho[1 : order + 1]
    try:
        coefficients = np.linalg.solve(R + 1e-9 * np.eye(order), r)
    except np.linalg.LinAlgError:
        coefficients = np.zeros(order)

    def spectral_radius(a: np.ndarray) -> float:
        companion = np.zeros((order, order))
        companion[0] = a
        if order > 1:
            companion[1:, :-1] = np.eye(order - 1)
        return float(np.max(np.abs(np.linalg.eigvals(companion))))

    while spectral_radius(coefficients) >= 0.999:
        coefficients *= 0.95
    return coefficients


class CopulaArrivals(ArrivalProcess):
    """Empirical-marginal arrivals with AR(p)-matched autocorrelation."""

    def __init__(
        self,
        interarrivals: Sequence[float],
        rng: np.random.Generator,
        order: int = 8,
    ):
        samples = np.asarray(interarrivals, dtype=float)
        samples = samples[samples > 0]
        if samples.size < max(16, 4 * order):
            raise ValueError(
                f"need >= {max(16, 4 * order)} positive interarrivals, "
                f"got {samples.size}"
            )
        self.rng = rng
        self.order = order
        self._sorted = np.sort(samples)
        # Latent normal scores of the observed sequence (rank transform).
        ranks = stats.rankdata(samples, method="average")
        uniforms = ranks / (samples.size + 1.0)
        latent = stats.norm.ppf(uniforms)
        self.coefficients = fit_ar_coefficients(latent, order)
        residual_var = 1.0 - float(
            self.coefficients @ acf(latent, max_lag=order)[1 : order + 1]
        )
        self._residual_std = float(np.sqrt(max(residual_var, 1e-6)))
        self._state = list(latent[-order:][::-1])  # most recent first

    def _quantile(self, u: float) -> float:
        """Empirical quantile of the interarrival marginal."""
        index = u * (self._sorted.size - 1)
        low = int(np.floor(index))
        high = min(low + 1, self._sorted.size - 1)
        frac = index - low
        return float(
            self._sorted[low] * (1.0 - frac) + self._sorted[high] * frac
        )

    def next_interarrival(self) -> float:
        z = float(
            np.dot(self.coefficients, self._state[: self.order])
            + self.rng.normal(0.0, self._residual_std)
        )
        self._state.insert(0, z)
        del self._state[self.order :]
        u = float(stats.norm.cdf(z))
        u = min(max(u, 1e-9), 1.0 - 1e-9)
        return self._quantile(u)

    @property
    def mean_rate(self) -> float:
        return 1.0 / float(self._sorted.mean())

    def lag1_autocorrelation(self) -> float:
        """Model's latent lag-1 autocorrelation (diagnostic)."""
        return float(acf_like_lag1(self.coefficients, self._residual_std))


def acf_like_lag1(coefficients: np.ndarray, residual_std: float) -> float:
    """Lag-1 autocorrelation implied by AR coefficients (simulated).

    A short simulation is simpler and more robust than the closed form
    for arbitrary p; deterministic seed keeps it reproducible.
    """
    rng = np.random.default_rng(0)
    order = coefficients.size
    state = [0.0] * order
    values = np.empty(4096)
    for i in range(values.size):
        z = float(np.dot(coefficients, state) + rng.normal(0.0, residual_std))
        state.insert(0, z)
        del state[order:]
        values[i] = z
    return float(acf(values, max_lag=1)[1])
