"""Layered queueing networks (Franks et al.; Imielowski).

LQNs model *nested possession of multiple resources*: a task holds its
own server while synchronously calling entries on lower-layer tasks —
the pattern of an app server keeping a worker thread busy while it
waits on the database.  Flat queueing networks cannot express this
(the paper: LQNs "demonstrate the nested possession of multiple
resources" but their complexity "often makes them prohibitive for
large scale experiments").

This is a simulation solver on the repository's DES engine: exact
semantics, no analytic approximation — and a node-count metric so the
complexity claim can be measured.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from ..simulation import Environment, Resource
from .arrivals import ArrivalProcess

__all__ = ["Activity", "LqnResult", "LqnSimulator", "LqnTask"]


@dataclass(frozen=True)
class Activity:
    """One step of an entry: local demand then an optional nested call.

    ``demand`` seconds are spent holding this task's server; if
    ``calls`` names another task, that entry is invoked synchronously
    (still holding this task's server — the defining LQN behaviour).
    """

    demand: float
    calls: Optional[str] = None

    def __post_init__(self) -> None:
        if self.demand < 0:
            raise ValueError(f"negative demand {self.demand}")


@dataclass(frozen=True)
class LqnTask:
    """A software task: a multiplicity-limited server with activities."""

    name: str
    multiplicity: int
    activities: tuple[Activity, ...]

    def __post_init__(self) -> None:
        if self.multiplicity < 1:
            raise ValueError(f"task {self.name!r} needs multiplicity >= 1")
        if not self.activities:
            raise ValueError(f"task {self.name!r} has no activities")


@dataclass
class LqnResult:
    """Measured outcome of an LQN simulation."""

    latencies: np.ndarray
    task_utilization: dict[str, float]
    n_nodes: int  # model-complexity metric: tasks + activities

    @property
    def mean_latency(self) -> float:
        return float(self.latencies.mean())


class LqnSimulator:
    """Simulates an open LQN: requests enter at the reference task."""

    def __init__(self, tasks: Sequence[LqnTask], reference: str):
        self.tasks = {t.name: t for t in tasks}
        if len(self.tasks) != len(tasks):
            raise ValueError("duplicate task names")
        if reference not in self.tasks:
            raise ValueError(f"reference task {reference!r} not defined")
        for task in tasks:
            for activity in task.activities:
                if activity.calls is not None and activity.calls not in self.tasks:
                    raise ValueError(
                        f"task {task.name!r} calls unknown task "
                        f"{activity.calls!r}"
                    )
        self.reference = reference
        self._check_acyclic()

    def _check_acyclic(self) -> None:
        """Reject call cycles (they deadlock under nested possession)."""
        state: dict[str, int] = {}

        def visit(name: str) -> None:
            if state.get(name) == 1:
                raise ValueError(f"call cycle through task {name!r}")
            if state.get(name) == 2:
                return
            state[name] = 1
            for activity in self.tasks[name].activities:
                if activity.calls is not None:
                    visit(activity.calls)
            state[name] = 2

        visit(self.reference)

    @property
    def n_nodes(self) -> int:
        """Tasks + activities: the model-size metric."""
        return len(self.tasks) + sum(
            len(t.activities) for t in self.tasks.values()
        )

    def _invoke(self, env: Environment, servers: dict[str, Resource],
                task_name: str):
        """Process generator: execute one entry on ``task_name``.

        The task's server is held for the WHOLE entry, including
        nested calls — simultaneous resource possession.
        """
        task = self.tasks[task_name]
        with servers[task_name].request() as slot:
            yield slot
            for activity in task.activities:
                if activity.demand > 0:
                    yield env.timeout(activity.demand)
                if activity.calls is not None:
                    yield env.process(self._invoke(env, servers, activity.calls))

    def run(
        self,
        arrivals: ArrivalProcess,
        n_requests: int,
        rng: Optional[np.random.Generator] = None,
    ) -> LqnResult:
        """Simulate ``n_requests`` open-loop arrivals; returns metrics."""
        if n_requests < 1:
            raise ValueError(f"need >= 1 request, got {n_requests}")
        env = Environment()
        servers = {
            name: Resource(env, capacity=task.multiplicity)
            for name, task in self.tasks.items()
        }
        latencies: list[float] = []

        def one_request(env):
            start = env.now
            yield env.process(self._invoke(env, servers, self.reference))
            latencies.append(env.now - start)

        def source(env):
            for _ in range(n_requests):
                yield env.timeout(arrivals.next_interarrival())
                env.process(one_request(env))

        env.process(source(env))
        env.run()
        return LqnResult(
            latencies=np.array(latencies),
            task_utilization={
                name: resource.utilization()
                for name, resource in servers.items()
            },
            n_nodes=self.n_nodes,
        )
