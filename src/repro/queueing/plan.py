"""Capacity planning: analytic load sweeps cross-validated by simulation.

The "what happens at 10x traffic" tool (Tay's review: analytic models
are for cheap extrapolation, validated at a few operating points;
Thomasian's hierarchical pattern: fit per-machine submodels, compose
them into a cluster-level network).  Three stages:

1. **Fit** — :func:`fit_cluster_model` extracts per-class service
   demands by replaying each request class's trained KOOZA model on
   the simulated machine (the same synthesize → replay recipe as
   ``validate_per_class``, with the same per-class RNG streams) and
   reading the per-device busy seconds off the replay machine.
   Arrival rates come from the characterized store profile
   (:meth:`repro.core.WorkloadProfile.class_rates`) or, for a bare
   model file, from a user-supplied base rate split by training mix.
2. **Sweep** — :func:`plan_sweep` composes the per-device demands into
   a cluster-level queueing network and walks a load-multiplier grid
   through the saturation-aware solvers
   (:func:`~repro.queueing.mva.solve_jackson_saturating` open /
   :func:`~repro.queueing.mva.solve_mva` closed), reporting per-station
   utilization, latency, the bottleneck station and the saturation
   knee as data — never as an exception.
3. **Cross-validate** — :func:`cross_validate` launches targeted
   sharded simulations (:func:`repro.datacenter.collect_fleet_to_store`)
   at user-chosen operating points and reports the analytic-vs-
   simulated relative error per point, Table-2 style.

Everything below the solvers is imported lazily: ``repro.core`` pulls
in ``repro.datacenter`` whose fleet module imports ``repro.store`` —
a module-level import here would close that cycle.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Mapping, Optional, Sequence

from .mva import AnalyticStation, solve_jackson_saturating, solve_mva

__all__ = [
    "CapacityPlan",
    "ClassDemand",
    "ClusterModel",
    "PlanPoint",
    "ValidationPoint",
    "cross_validate",
    "fit_cluster_model",
    "parse_multipliers",
    "plan_sweep",
    "solve_point",
    "validation_table",
]

#: Station order of the cluster network: one station per machine device,
#: matching :meth:`repro.datacenter.Machine.busy_report` keys.
STATION_DEVICES = ("cpu", "memory", "disk", "nic")

#: Default load-multiplier grid: 0.5x to 100x, geometric, 17 points.
DEFAULT_SCALE = "0.5:100:17"


def parse_multipliers(text: str) -> list[float]:
    """Parse a load-multiplier grid specification.

    Two forms: ``"0.5:100:17"`` is an inclusive geometric grid (low,
    high, point count); ``"1,2,5,10"`` is an explicit comma list.
    The result is ascending, deduplicated, and strictly positive.
    """
    text = text.strip()
    if not text:
        raise ValueError("empty multiplier grid")
    if ":" in text:
        parts = text.split(":")
        if len(parts) != 3:
            raise ValueError(
                f"bad grid {text!r}: expected LOW:HIGH:POINTS"
            )
        try:
            lo, hi = float(parts[0]), float(parts[1])
            n = int(parts[2])
        except ValueError:
            raise ValueError(f"bad grid {text!r}: expected LOW:HIGH:POINTS")
        if lo <= 0 or hi <= 0:
            raise ValueError(f"multipliers must be > 0 in {text!r}")
        if hi <= lo:
            raise ValueError(f"bad grid {text!r}: HIGH must exceed LOW")
        if n < 2:
            raise ValueError(f"bad grid {text!r}: need >= 2 points")
        ratio = hi / lo
        values = [lo * ratio ** (i / (n - 1)) for i in range(n)]
    else:
        try:
            values = [float(v) for v in text.split(",") if v.strip()]
        except ValueError:
            raise ValueError(f"bad multiplier list {text!r}")
        if not values:
            raise ValueError("empty multiplier grid")
        if any(v <= 0 for v in values):
            raise ValueError(f"multipliers must be > 0 in {text!r}")
    out: list[float] = []
    for v in sorted(values):
        if not out or v > out[-1]:
            out.append(v)
    return out


@dataclass(frozen=True)
class ClassDemand:
    """One request class's fitted arrival and service parameters."""

    request_class: str
    #: Arrival rate at the 1x operating point (requests per second).
    arrival_rate: float
    #: Seconds of device occupancy per request, per station.
    demands: dict[str, float]
    #: Synthetic requests replayed to measure the demands.
    n_fit: int
    #: Mean end-to-end latency of the measurement replay (lightly
    #: loaded: a near-zero-queueing calibration point).
    replay_latency: float
    #: Mean latency observed in the source traces (None for a bare
    #: model input, which carries no observations).
    observed_latency: Optional[float] = None

    def to_dict(self) -> dict[str, Any]:
        return {
            "request_class": self.request_class,
            "arrival_rate": self.arrival_rate,
            "demands": dict(self.demands),
            "n_fit": self.n_fit,
            "replay_latency": self.replay_latency,
            "observed_latency": self.observed_latency,
        }


@dataclass(frozen=True)
class ClusterModel:
    """Per-class demands composed into one cluster-level network."""

    #: (station, parallel servers) in :data:`STATION_DEVICES` order.
    stations: tuple[tuple[str, int], ...]
    classes: tuple[ClassDemand, ...]
    #: Total arrival rate at the 1x operating point.
    base_rate: float
    #: Where the fit came from: ``"store"`` or ``"model"``.
    fit_source: str
    #: Classes that could not be fitted, with reasons.
    skipped: tuple[tuple[str, str], ...] = ()

    def aggregate_demands(self) -> dict[str, float]:
        """Mix-weighted mean service demand per station (s/request).

        The standard multi-class to single-class reduction: each
        class's demand weighted by its share of the arrival stream.
        """
        totals = {name: 0.0 for name, _ in self.stations}
        for c in self.classes:
            share = c.arrival_rate / self.base_rate
            for name in totals:
                totals[name] += share * c.demands.get(name, 0.0)
        return totals

    def analytic_stations(self) -> list[AnalyticStation]:
        """The solvable network (stations with zero demand drop out)."""
        demands = self.aggregate_demands()
        return [
            AnalyticStation(name, 1.0, demands[name], servers)
            for name, servers in self.stations
            if demands[name] > 0.0
        ]

    @property
    def saturation_rate(self) -> float:
        """Exact arrival rate at which the first station saturates."""
        demands = self.aggregate_demands()
        limits = [
            servers / demands[name]
            for name, servers in self.stations
            if demands[name] > 0.0
        ]
        return min(limits) if limits else math.inf

    @property
    def bottleneck(self) -> str:
        """Station with the highest per-server demand (saturates first)."""
        demands = self.aggregate_demands()
        return max(
            self.stations, key=lambda s: demands[s[0]] / s[1]
        )[0]

    def to_dict(self) -> dict[str, Any]:
        return {
            "stations": [
                {"name": name, "servers": servers}
                for name, servers in self.stations
            ],
            "classes": [c.to_dict() for c in self.classes],
            "base_rate": self.base_rate,
            "fit_source": self.fit_source,
            "aggregate_demands": self.aggregate_demands(),
            "bottleneck": self.bottleneck,
            "saturation_rate": self.saturation_rate,
            "skipped": [list(pair) for pair in self.skipped],
        }


def fit_cluster_model(
    source=None,
    models: Optional[Mapping[str, Any]] = None,
    base_rate: Optional[float] = None,
    *,
    config=None,
    seed: int = 42,
    max_per_class: int = 256,
    workers: int = 1,
    cache: bool = False,
    machine_spec=None,
    window: float = 0.25,
    cores: int = 8,
    analysis=None,
) -> ClusterModel:
    """Fit per-class service demands and arrival rates into a cluster model.

    Two input shapes:

    * ``source`` (a trace source / shard store): arrival rates and the
      class mix come from the streamed profile
      (:meth:`~repro.core.WorkloadProfile.class_rates`); per-class
      models are trained via ``train_per_class`` unless ``models`` is
      passed.
    * ``models`` alone (a loaded per-class table): ``base_rate`` is
      required, and the mix is split by each model's training size.

    Each class's station demands are measured by synthesizing
    ``min(class count, max_per_class)`` requests with the same
    per-class RNG streams as ``validate_per_class`` and replaying them
    on a simulated machine (``machine_spec``, default hardware); the
    machine's cumulative per-device busy seconds divided by the request
    count are the per-request demands.  Classes without a model or
    with a zero rate are recorded in :attr:`ClusterModel.skipped`.
    """
    from ..core import ReplayHarness
    from ..datacenter import MachineSpec
    from ..store.analyze import analyze_source, class_rng, class_seed

    if source is None and models is None:
        raise ValueError("pass a trace source, a per-class model table, or both")
    observed_latency: dict[str, float] = {}
    if source is not None:
        if analysis is None:
            analysis = analyze_source(
                source,
                window=window,
                cores=cores,
                workers=workers,
                cache=cache,
            )
        profile = analysis.profile
        rates = profile.class_rates()
        counts = dict(profile.classes)
        observed_latency = {
            cls: stats.latencies.mean
            for cls, stats in analysis.per_class.items()
            if stats.latencies.n
        }
        if models is None:
            from ..store.training import train_per_class

            fit = train_per_class(
                source, config, workers=workers, cache=cache
            )
            models = fit.models
        if base_rate is None:
            base_rate = profile.request_rate
        fit_source = "store"
    else:
        if base_rate is None:
            raise ValueError(
                "base_rate is required when fitting from a bare model table"
            )
        counts = {
            cls: int(model.n_training_requests)
            for cls, model in models.items()
        }
        total = sum(counts.values())
        if total <= 0:
            raise ValueError("model table carries no training counts")
        rates = {
            cls: base_rate * n / total for cls, n in counts.items()
        }
        fit_source = "model"
    if base_rate is None or base_rate <= 0:
        raise ValueError(f"base arrival rate must be > 0, got {base_rate}")
    if max_per_class < 1:
        raise ValueError(f"max_per_class must be >= 1, got {max_per_class}")

    spec = machine_spec if machine_spec is not None else MachineSpec()
    servers = {
        "cpu": spec.cpu.cores,
        "memory": spec.memory.channels,
        "disk": 1,
        "nic": 1,
    }
    classes: list[ClassDemand] = []
    skipped: list[tuple[str, str]] = []
    for cls in sorted(rates):
        if models is None or cls not in models:
            skipped.append((cls, "no model for class"))
            continue
        rate = rates[cls]
        if rate <= 0:
            skipped.append((cls, "zero arrival rate"))
            continue
        n = max(1, min(int(counts.get(cls, max_per_class)), max_per_class))
        synthetic = models[cls].synthesize(n, class_rng(seed, cls))
        harness = ReplayHarness(
            machine_spec=spec, seed=class_seed(seed + 1, cls)
        )
        replayed = harness.replay(synthetic)
        busy = harness.machines[0].busy_report()
        demands = {
            device: busy[device] / n for device in STATION_DEVICES
        }
        latencies = [r.latency for r in replayed.completed_requests()]
        classes.append(
            ClassDemand(
                request_class=cls,
                arrival_rate=rate,
                demands=demands,
                n_fit=n,
                replay_latency=(
                    sum(latencies) / len(latencies) if latencies else 0.0
                ),
                observed_latency=observed_latency.get(cls),
            )
        )
    if not classes:
        reasons = "; ".join(f"{c}: {why}" for c, why in skipped)
        raise ValueError(
            f"no request class could be fitted ({reasons or 'no classes'})"
        )
    fitted_rate = sum(c.arrival_rate for c in classes)
    return ClusterModel(
        stations=tuple((name, servers[name]) for name in STATION_DEVICES),
        classes=tuple(classes),
        base_rate=fitted_rate,
        fit_source=fit_source,
        skipped=tuple(skipped),
    )


@dataclass(frozen=True)
class PlanPoint:
    """The analytic network solved at one load multiplier."""

    multiplier: float
    #: Offered arrival rate (open) or achieved throughput (closed).
    arrival_rate: float
    feasible: bool
    utilization: dict[str, float]
    bottleneck: str
    #: Mean request latency in seconds; ``inf`` past saturation.
    mean_latency: float
    #: Closed-solver population at this multiplier (None for open).
    n_customers: Optional[int] = None

    @property
    def bottleneck_utilization(self) -> float:
        return self.utilization[self.bottleneck]

    def to_dict(self) -> dict[str, Any]:
        return {
            "multiplier": self.multiplier,
            "arrival_rate": self.arrival_rate,
            "feasible": self.feasible,
            "utilization": dict(self.utilization),
            "bottleneck": self.bottleneck,
            "bottleneck_utilization": self.bottleneck_utilization,
            "mean_latency": (
                self.mean_latency
                if math.isfinite(self.mean_latency)
                else None
            ),
            "n_customers": self.n_customers,
        }


def solve_point(
    cluster: ClusterModel,
    multiplier: float,
    solver: str = "jackson",
    think_time: float = 0.0,
    customers: Optional[int] = None,
) -> PlanPoint:
    """Solve the cluster network at one load multiplier, non-raising.

    ``solver="jackson"`` scales the open arrival rate; past the knee
    the point comes back infeasible with infinite latency.
    ``solver="mva"`` scales a closed population of ``customers``
    interactive users with ``think_time`` seconds between requests;
    closed networks self-throttle, so a point is marked infeasible
    once its population exceeds the asymptotic-bound knee
    N* = (Z + sum D) / max D (latency then grows linearly, which is
    saturation for an interactive service).
    """
    if multiplier <= 0:
        raise ValueError(f"multiplier must be > 0, got {multiplier}")
    if solver not in ("jackson", "mva"):
        raise ValueError(f"unknown solver {solver!r}")
    stations = cluster.analytic_stations()
    if not stations:
        raise ValueError("cluster model has no station with positive demand")
    all_names = [name for name, _ in cluster.stations]
    if solver == "jackson":
        rate = cluster.base_rate * multiplier
        solution = solve_jackson_saturating(stations, rate)
        utilization = {
            name: solution.station_utilization.get(name, 0.0)
            for name in all_names
        }
        bottleneck = max(utilization, key=utilization.get)
        return PlanPoint(
            multiplier=multiplier,
            arrival_rate=rate,
            feasible=solution.feasible,
            utilization=utilization,
            bottleneck=bottleneck,
            mean_latency=solution.mean_latency,
        )
    if customers is None or customers < 1:
        raise ValueError("solver='mva' needs a base population (customers >= 1)")
    if think_time < 0:
        raise ValueError(f"think time must be >= 0, got {think_time}")
    n = max(1, round(customers * multiplier))
    solution = solve_mva(stations, n, think_time)
    throughput = solution.throughput
    per_server = {s.name: s.demand / s.servers for s in stations}
    utilization = {
        name: throughput * per_server.get(name, 0.0) for name in all_names
    }
    bottleneck = max(utilization, key=utilization.get)
    knee_population = (think_time + sum(per_server.values())) / max(
        per_server.values()
    )
    return PlanPoint(
        multiplier=multiplier,
        arrival_rate=throughput,
        feasible=n < knee_population,
        utilization=utilization,
        bottleneck=bottleneck,
        mean_latency=solution.response_time,
        n_customers=n,
    )


@dataclass
class CapacityPlan:
    """A solved load sweep: the structured feasibility result."""

    cluster: ClusterModel
    solver: str
    points: list[PlanPoint] = field(default_factory=list)
    think_time: float = 0.0
    customers: Optional[int] = None

    @property
    def knee_multiplier(self) -> Optional[float]:
        """First infeasible grid multiplier (None if none saturates)."""
        for point in self.points:
            if not point.feasible:
                return point.multiplier
        return None

    @property
    def max_feasible_multiplier(self) -> Optional[float]:
        feasible = [p.multiplier for p in self.points if p.feasible]
        return max(feasible) if feasible else None

    @property
    def bottleneck(self) -> str:
        return self.cluster.bottleneck

    @property
    def exact_knee_multiplier(self) -> float:
        """Saturation multiplier from the demand bound (open network)."""
        return self.cluster.saturation_rate / self.cluster.base_rate

    def to_dict(self) -> dict[str, Any]:
        return {
            "cluster": self.cluster.to_dict(),
            "solver": self.solver,
            "think_time": self.think_time,
            "customers": self.customers,
            "points": [p.to_dict() for p in self.points],
            "knee_multiplier": self.knee_multiplier,
            "max_feasible_multiplier": self.max_feasible_multiplier,
            "exact_knee_multiplier": (
                self.exact_knee_multiplier
                if math.isfinite(self.exact_knee_multiplier)
                else None
            ),
            "bottleneck": self.bottleneck,
        }

    def to_text(self) -> str:
        """Deterministic human-readable rendering (the CLI output)."""
        c = self.cluster
        demands = c.aggregate_demands()
        lines = [
            f"cluster model (fit from {c.fit_source}): base rate "
            f"{c.base_rate:.2f} req/s, {len(c.classes)} classes, "
            f"solver {self.solver}"
        ]
        for name, servers in c.stations:
            lines.append(
                f"  station {name:>6} x{servers}: demand "
                f"{demands[name] * 1000:.3f} ms/request"
            )
        for cls in c.classes:
            observed = (
                f", observed {cls.observed_latency * 1000:.1f} ms"
                if cls.observed_latency is not None
                else ""
            )
            lines.append(
                f"  class {cls.request_class}: {cls.arrival_rate:.2f} req/s, "
                f"replay latency {cls.replay_latency * 1000:.1f} ms"
                f"{observed} (n={cls.n_fit})"
            )
        for cls, why in c.skipped:
            lines.append(f"  class {cls}: skipped ({why})")
        header = (
            f"{'mult':>8} | {'rate/s':>9} | {'util%':>7} | "
            f"{'latency ms':>10} | feasible"
        )
        lines.append(header)
        lines.append("-" * len(header))
        for p in self.points:
            latency = (
                f"{p.mean_latency * 1000:>10.3f}"
                if math.isfinite(p.mean_latency)
                else f"{'inf':>10}"
            )
            lines.append(
                f"{p.multiplier:>8.2f} | {p.arrival_rate:>9.2f} | "
                f"{p.bottleneck_utilization * 100:>7.1f} | {latency} | "
                f"{'yes' if p.feasible else 'SATURATED'}"
            )
        knee = self.knee_multiplier
        if knee is not None:
            lines.append(
                f"knee: first infeasible multiplier {knee:.2f}x "
                f"(bottleneck {self.bottleneck} saturates)"
            )
        else:
            lines.append(
                f"knee: none within the sweep (bottleneck {self.bottleneck})"
            )
        if self.solver == "jackson" and math.isfinite(
            self.exact_knee_multiplier
        ):
            lines.append(
                f"exact saturation at {self.exact_knee_multiplier:.2f}x base "
                f"({c.saturation_rate:.2f} req/s)"
            )
        return "\n".join(lines)


def plan_sweep(
    cluster: ClusterModel,
    multipliers: Sequence[float],
    solver: str = "jackson",
    think_time: float = 0.0,
    customers: Optional[int] = None,
) -> CapacityPlan:
    """Walk the multiplier grid through the saturation-aware solvers.

    Milliseconds per grid, never raises past the knee: infeasible
    points report their true (>= 1) bottleneck utilization and
    infinite latency, and the plan exposes the knee as the first
    infeasible multiplier.
    """
    if not multipliers:
        raise ValueError("empty multiplier grid")
    plan = CapacityPlan(
        cluster=cluster,
        solver=solver,
        think_time=think_time,
        customers=customers,
    )
    for multiplier in multipliers:
        plan.points.append(
            solve_point(cluster, multiplier, solver, think_time, customers)
        )
    return plan


@dataclass(frozen=True)
class ValidationPoint:
    """Analytic prediction vs targeted simulation at one multiplier."""

    multiplier: float
    #: Per-replica arrival rate the simulation ran at.
    arrival_rate: float
    n_requests: int
    replicas: int
    simulated_latency: float
    analytic_latency: float
    analytic_feasible: bool

    @property
    def relative_error_pct(self) -> float:
        """|analytic - simulated| as a percentage of the simulated mean."""
        if self.simulated_latency <= 0:
            return math.inf
        if not math.isfinite(self.analytic_latency):
            return math.inf
        return (
            abs(self.analytic_latency - self.simulated_latency)
            / self.simulated_latency
            * 100.0
        )

    def to_dict(self) -> dict[str, Any]:
        return {
            "multiplier": self.multiplier,
            "arrival_rate": self.arrival_rate,
            "n_requests": self.n_requests,
            "replicas": self.replicas,
            "simulated_latency": self.simulated_latency,
            "analytic_latency": (
                self.analytic_latency
                if math.isfinite(self.analytic_latency)
                else None
            ),
            "analytic_feasible": self.analytic_feasible,
            "relative_error_pct": (
                self.relative_error_pct
                if math.isfinite(self.relative_error_pct)
                else None
            ),
        }


def validation_table(points: Sequence[ValidationPoint]) -> str:
    """Deterministic text rendering of the cross-validation points."""
    header = (
        f"{'mult':>8} | {'rate/s':>9} | {'simulated ms':>12} | "
        f"{'analytic ms':>11} | {'rel err%':>8}"
    )
    lines = [header, "-" * len(header)]
    for p in points:
        analytic = (
            f"{p.analytic_latency * 1000:>11.3f}"
            if math.isfinite(p.analytic_latency)
            else f"{'inf':>11}"
        )
        error = (
            f"{p.relative_error_pct:>8.2f}"
            if math.isfinite(p.relative_error_pct)
            else f"{'inf':>8}"
        )
        lines.append(
            f"{p.multiplier:>8.2f} | {p.arrival_rate:>9.2f} | "
            f"{p.simulated_latency * 1000:>12.3f} | {analytic} | {error}"
        )
    return "\n".join(lines)


def cross_validate(
    cluster: ClusterModel,
    multipliers: Sequence[float],
    spec,
    *,
    solver: str = "jackson",
    think_time: float = 0.0,
    customers: Optional[int] = None,
    workers: int = 1,
    directory: Optional[Path] = None,
) -> list[ValidationPoint]:
    """Validate the analytic curve by simulation at chosen multipliers.

    ``spec`` is a :class:`repro.datacenter.FleetSpec` describing the 1x
    operating point (app, replicas, requests per replica, seed); each
    multiplier launches a sharded fleet at the scaled arrival rate via
    :func:`~repro.datacenter.collect_fleet_to_store`, characterizes the
    resulting store, and compares its mean completed-request latency
    against the analytic prediction.  Results are deterministic under a
    fixed spec seed.  Stores land under ``directory`` (kept) or a
    temporary directory (removed).
    """
    import tempfile

    from ..datacenter import collect_fleet_to_store
    from ..store.analyze import characterize_source

    base_app_rate = spec.replica(0).arrival_rate
    if base_app_rate is None or base_app_rate <= 0:
        raise ValueError(
            f"app {spec.app!r} has no positive arrival rate to scale"
        )
    points: list[ValidationPoint] = []
    for i, multiplier in enumerate(multipliers):
        if multiplier <= 0:
            raise ValueError(f"multiplier must be > 0, got {multiplier}")
        point_spec = spec.at_rate(base_app_rate * multiplier)
        tmp = None
        if directory is None:
            tmp = tempfile.TemporaryDirectory(prefix="repro-plan-")
            store_dir = Path(tmp.name) / f"point-{i}"
        else:
            store_dir = Path(directory) / f"point-{i}"
        try:
            result = collect_fleet_to_store(
                point_spec, directory=store_dir, workers=workers
            )
            profile = characterize_source(result.store(), workers=workers)
        finally:
            if tmp is not None:
                tmp.cleanup()
        if profile.requests is None:
            raise ValueError(
                f"validation run at {multiplier}x produced no completed "
                "requests; raise n_requests"
            )
        analytic = solve_point(
            cluster, multiplier, solver, think_time, customers
        )
        points.append(
            ValidationPoint(
                multiplier=multiplier,
                arrival_rate=base_app_rate * multiplier,
                n_requests=point_spec.n_requests,
                replicas=point_spec.replicas,
                simulated_latency=profile.requests.mean_latency,
                analytic_latency=analytic.mean_latency,
                analytic_feasible=analytic.feasible,
            )
        )
    return points
