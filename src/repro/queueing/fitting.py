"""Interarrival / service-time distribution fitting.

Implements Feitelson's recipe from the paper's network-modeling survey:
fit a battery of candidate distributions by maximum likelihood and rank
them by the Kolmogorov-Smirnov statistic against the data.  The winner
becomes the generative model for synthetic streams.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np
from scipy import stats

__all__ = ["FittedDistribution", "fit_distribution", "CANDIDATE_FAMILIES"]

#: Families tried by default: the set Feitelson discusses for arrival
#: processes (exponential for Poisson, heavy-tailed and skewed
#: alternatives for everything real traffic does instead).
CANDIDATE_FAMILIES = ("expon", "gamma", "lognorm", "weibull_min", "pareto")


@dataclass
class FittedDistribution:
    """One fitted family with its goodness-of-fit scores."""

    family: str
    params: tuple[float, ...]
    ks_statistic: float
    ks_pvalue: float
    log_likelihood: float

    @property
    def frozen(self):
        """The frozen scipy distribution for sampling/evaluation."""
        return getattr(stats, self.family)(*self.params)

    def sample(self, n: int, rng: np.random.Generator) -> np.ndarray:
        """Draw ``n`` values from the fitted distribution."""
        return np.maximum(0.0, self.frozen.rvs(size=n, random_state=rng))

    @property
    def mean(self) -> float:
        return float(self.frozen.mean())

    def describe(self) -> str:
        return (
            f"{self.family}{self.params} "
            f"KS={self.ks_statistic:.4f} p={self.ks_pvalue:.3f}"
        )


def _fit_family(family: str, data: np.ndarray) -> Optional[FittedDistribution]:
    dist = getattr(stats, family)
    try:
        # Positive data: lock location at 0 for scale families so the
        # fit cannot place mass below zero.
        if family in ("expon", "gamma", "lognorm", "weibull_min"):
            params = dist.fit(data, floc=0.0)
        else:
            params = dist.fit(data)
        frozen = dist(*params)
        ks = stats.kstest(data, frozen.cdf)
        logpdf = frozen.logpdf(data)
        loglik = float(np.sum(logpdf[np.isfinite(logpdf)]))
        if not np.isfinite(ks.statistic):
            return None
        return FittedDistribution(
            family=family,
            params=tuple(float(p) for p in params),
            ks_statistic=float(ks.statistic),
            ks_pvalue=float(ks.pvalue),
            log_likelihood=loglik,
        )
    except Exception:
        # A family can legitimately fail to converge on pathological
        # data; it is simply excluded from the ranking.
        return None


def fit_distribution(
    samples: Sequence[float],
    families: Sequence[str] = CANDIDATE_FAMILIES,
) -> FittedDistribution:
    """Fit every candidate family and return the best by KS statistic.

    Raises ``ValueError`` if no family converges or the input is
    degenerate (fewer than 8 samples, or constant data — fit a
    deterministic model yourself in that case).
    """
    data = np.asarray(samples, dtype=float)
    data = data[np.isfinite(data)]
    data = data[data > 0]
    if data.size < 8:
        raise ValueError(f"need >= 8 positive samples, got {data.size}")
    if np.ptp(data) == 0:
        raise ValueError("constant data: distribution fitting is meaningless")
    fits = [_fit_family(family, data) for family in families]
    fits = [f for f in fits if f is not None]
    if not fits:
        raise ValueError("no candidate family could be fitted")
    return min(fits, key=lambda f: f.ks_statistic)
