"""Multi-station queueing-network simulator.

The machinery of in-depth models (Liu et al.'s 3-tier model is three
multi-station queues in series): requests of a class visit a fixed
route of stations, queue for a server at each, and hold it for a
sampled service time.  Runs on the repository's DES engine.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from ..simulation import Environment, Resource
from .arrivals import ArrivalProcess

__all__ = ["QueueingNetwork", "Station", "StationVisit", "NetworkResult"]

#: Samples a service time: (request_class, rng) -> seconds.
ServiceSampler = Callable[[str, np.random.Generator], float]


@dataclass
class Station:
    """One service station: ``servers`` parallel servers, one queue."""

    name: str
    servers: int
    service_sampler: ServiceSampler

    def __post_init__(self) -> None:
        if self.servers < 1:
            raise ValueError(f"station {self.name!r} needs >= 1 server")


@dataclass(slots=True)
class StationVisit:
    """Measured outcome of one visit to one station."""

    station: str
    wait: float
    service: float


@dataclass(slots=True)
class NetworkResult:
    """Measured outcome of one request through the network."""

    request_class: str
    arrival_time: float
    completion_time: float
    visits: list[StationVisit]

    @property
    def latency(self) -> float:
        return self.completion_time - self.arrival_time


class QueueingNetwork:
    """An open queueing network with class-based deterministic routes."""

    def __init__(
        self,
        env: Environment,
        stations: Sequence[Station],
        routes: dict[str, Sequence[str]],
        rng: np.random.Generator,
    ):
        self.env = env
        self.rng = rng
        self.stations = {s.name: s for s in stations}
        if len(self.stations) != len(stations):
            raise ValueError("duplicate station names")
        for request_class, route in routes.items():
            unknown = [name for name in route if name not in self.stations]
            if unknown:
                raise ValueError(
                    f"route for {request_class!r} visits unknown stations {unknown}"
                )
        self.routes = {k: list(v) for k, v in routes.items()}
        self._resources = {
            name: Resource(env, capacity=s.servers)
            for name, s in self.stations.items()
        }
        self.results: list[NetworkResult] = []

    def submit(self, request_class: str):
        """Process generator: route one request; returns NetworkResult."""
        if request_class not in self.routes:
            raise KeyError(f"no route for request class {request_class!r}")
        result = NetworkResult(
            request_class=request_class,
            arrival_time=self.env.now,
            completion_time=float("nan"),
            visits=[],
        )
        for name in self.routes[request_class]:
            station = self.stations[name]
            resource = self._resources[name]
            enqueue = self.env.now
            with resource.request() as slot:
                yield slot
                wait = self.env.now - enqueue
                service = float(station.service_sampler(request_class, self.rng))
                if service < 0:
                    raise ValueError(
                        f"station {name!r} sampled negative service {service}"
                    )
                yield self.env.timeout(service)
            result.visits.append(StationVisit(name, wait, service))
        result.completion_time = self.env.now
        self.results.append(result)
        return result

    def run_open(
        self,
        arrivals: ArrivalProcess,
        class_sampler: Callable[[np.random.Generator], str],
        n_requests: int,
    ) -> list[NetworkResult]:
        """Drive the network with ``n_requests`` open-loop arrivals.

        Runs the embedded environment to completion and returns the
        per-request results in completion order.
        """

        def source(env):
            for _ in range(n_requests):
                yield env.timeout(arrivals.next_interarrival())
                env.process(self.submit(class_sampler(self.rng)))

        self.env.process(source(self.env))
        self.env.run()
        return self.results

    def station_utilization(self, name: str) -> float:
        """Observed utilization of a station since time zero."""
        return self._resources[name].utilization()
