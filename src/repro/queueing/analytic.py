"""Closed-form queueing results: M/M/1, M/M/c, M/G/1.

Used as analytic cross-checks for the simulated queueing network (the
in-depth baseline) and as capacity-planning primitives in the examples.
All formulas assume FCFS and stability (rho < 1) and raise otherwise.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["MG1", "MM1", "MMc", "erlang_c"]


@dataclass(frozen=True)
class QueueMetrics:
    """Steady-state metrics of a queueing station."""

    utilization: float
    mean_queue_length: float  # Lq: waiting only
    mean_number_in_system: float  # L
    mean_wait: float  # Wq: queueing delay
    mean_response: float  # W = Wq + service


def _check_stability(rho: float) -> None:
    if rho >= 1.0:
        raise ValueError(f"unstable queue: offered load rho={rho:.3f} >= 1")
    if rho < 0:
        raise ValueError(f"negative load rho={rho:.3f}")


def MM1(arrival_rate: float, service_rate: float) -> QueueMetrics:
    """Single exponential server fed by Poisson arrivals."""
    if arrival_rate < 0 or service_rate <= 0:
        raise ValueError("rates must be positive")
    rho = arrival_rate / service_rate
    _check_stability(rho)
    lq = rho * rho / (1.0 - rho)
    wq = lq / arrival_rate if arrival_rate > 0 else 0.0
    return QueueMetrics(
        utilization=rho,
        mean_queue_length=lq,
        mean_number_in_system=rho / (1.0 - rho),
        mean_wait=wq,
        mean_response=wq + 1.0 / service_rate,
    )


def erlang_c(servers: int, offered_load: float) -> float:
    """Probability an arrival must queue in an M/M/c system.

    ``offered_load`` is a = lambda/mu (in Erlangs); requires a < c.
    """
    if servers < 1:
        raise ValueError(f"need >= 1 server, got {servers}")
    a = offered_load
    _check_stability(a / servers)
    # Sum in log space is unnecessary at datacenter scales; direct
    # iterative evaluation is stable for c up to thousands.
    term = 1.0
    total = 1.0
    for k in range(1, servers):
        term *= a / k
        total += term
    term *= a / servers
    top = term * servers / (servers - a)
    return top / (total + top)


def MMc(arrival_rate: float, service_rate: float, servers: int) -> QueueMetrics:
    """``c`` exponential servers fed by Poisson arrivals."""
    if arrival_rate < 0 or service_rate <= 0:
        raise ValueError("rates must be positive")
    a = arrival_rate / service_rate
    rho = a / servers
    _check_stability(rho)
    pq = erlang_c(servers, a)
    lq = pq * rho / (1.0 - rho)
    wq = lq / arrival_rate if arrival_rate > 0 else 0.0
    return QueueMetrics(
        utilization=rho,
        mean_queue_length=lq,
        mean_number_in_system=lq + a,
        mean_wait=wq,
        mean_response=wq + 1.0 / service_rate,
    )


def MG1(
    arrival_rate: float, mean_service: float, service_scv: float
) -> QueueMetrics:
    """Single general server: Pollaczek-Khinchine mean-value formula.

    ``service_scv`` is the squared coefficient of variation of service
    time (1.0 recovers M/M/1).  Useful for disk queues, whose service
    times are decidedly non-exponential.
    """
    if arrival_rate < 0 or mean_service <= 0 or service_scv < 0:
        raise ValueError("invalid parameters")
    rho = arrival_rate * mean_service
    _check_stability(rho)
    wq = rho * mean_service * (1.0 + service_scv) / (2.0 * (1.0 - rho))
    lq = arrival_rate * wq
    return QueueMetrics(
        utilization=rho,
        mean_queue_length=lq,
        mean_number_in_system=lq + rho,
        mean_wait=wq,
        mean_response=wq + mean_service,
    )
