"""Closed-form queueing results: M/M/1, M/M/c, M/G/1.

Used as analytic cross-checks for the simulated queueing network (the
in-depth baseline) and as capacity-planning primitives in the examples
and in :mod:`repro.queueing.plan`.  The bare formulas assume FCFS and
stability (rho < 1) and raise otherwise; the ``*_saturating`` wrappers
instead report an overloaded station as a finite-utilization,
infinite-delay :class:`QueueMetrics` — what a load sweep that crosses
the saturation knee needs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = [
    "MG1",
    "MG1_saturating",
    "MM1",
    "MM1_saturating",
    "MMc",
    "MMc_saturating",
    "QueueMetrics",
    "erlang_c",
    "erlang_c_saturating",
    "saturated_metrics",
]


@dataclass(frozen=True)
class QueueMetrics:
    """Steady-state metrics of a queueing station."""

    utilization: float
    mean_queue_length: float  # Lq: waiting only
    mean_number_in_system: float  # L
    mean_wait: float  # Wq: queueing delay
    mean_response: float  # W = Wq + service

    @property
    def saturated(self) -> bool:
        """True when the station has no steady state (rho >= 1)."""
        return not math.isfinite(self.mean_response)


def saturated_metrics(rho: float) -> QueueMetrics:
    """The :class:`QueueMetrics` of an overloaded station.

    Utilization is reported as the (>= 1) offered load so a sweep can
    rank how far past the knee each station is; every queue/delay
    metric is honestly infinite.
    """
    return QueueMetrics(
        utilization=rho,
        mean_queue_length=math.inf,
        mean_number_in_system=math.inf,
        mean_wait=math.inf,
        mean_response=math.inf,
    )


def _check_stability(rho: float) -> None:
    if math.isnan(rho):
        raise ValueError("offered load is NaN")
    if rho >= 1.0:
        raise ValueError(f"unstable queue: offered load rho={rho:.3f} >= 1")
    if rho < 0:
        raise ValueError(f"negative load rho={rho:.3f}")


def MM1(arrival_rate: float, service_rate: float) -> QueueMetrics:
    """Single exponential server fed by Poisson arrivals."""
    if arrival_rate < 0 or service_rate <= 0:
        raise ValueError("rates must be positive")
    rho = arrival_rate / service_rate
    _check_stability(rho)
    lq = rho * rho / (1.0 - rho)
    wq = lq / arrival_rate if arrival_rate > 0 else 0.0
    return QueueMetrics(
        utilization=rho,
        mean_queue_length=lq,
        mean_number_in_system=rho / (1.0 - rho),
        mean_wait=wq,
        mean_response=wq + 1.0 / service_rate,
    )


def erlang_c(servers: int, offered_load: float) -> float:
    """Probability an arrival must queue in an M/M/c system.

    ``offered_load`` is a = lambda/mu (in Erlangs); requires a < c.
    The bound is checked on ``servers - a`` directly, not only on the
    rho ratio: the formula divides by ``servers - a``, and a ratio test
    alone can round through 1.0 at huge server counts and let a
    zero/negative denominator produce garbage instead of an error.
    """
    if servers < 1:
        raise ValueError(f"need >= 1 server, got {servers}")
    a = offered_load
    if math.isnan(a):
        raise ValueError("offered load is NaN")
    if a < 0:
        raise ValueError(f"negative offered load a={a:.3f}")
    if a >= servers:
        raise ValueError(
            f"unstable queue: offered load a={a:.3f} >= servers={servers}"
        )
    # Sum in log space is unnecessary at datacenter scales; direct
    # iterative evaluation is stable for c up to thousands.
    term = 1.0
    total = 1.0
    for k in range(1, servers):
        term *= a / k
        total += term
    term *= a / servers
    top = term * servers / (servers - a)
    return top / (total + top)


def MMc(arrival_rate: float, service_rate: float, servers: int) -> QueueMetrics:
    """``c`` exponential servers fed by Poisson arrivals."""
    if arrival_rate < 0 or service_rate <= 0:
        raise ValueError("rates must be positive")
    a = arrival_rate / service_rate
    rho = a / servers
    _check_stability(rho)
    pq = erlang_c(servers, a)
    lq = pq * rho / (1.0 - rho)
    wq = lq / arrival_rate if arrival_rate > 0 else 0.0
    return QueueMetrics(
        utilization=rho,
        mean_queue_length=lq,
        mean_number_in_system=lq + a,
        mean_wait=wq,
        mean_response=wq + 1.0 / service_rate,
    )


def MG1(
    arrival_rate: float, mean_service: float, service_scv: float
) -> QueueMetrics:
    """Single general server: Pollaczek-Khinchine mean-value formula.

    ``service_scv`` is the squared coefficient of variation of service
    time (1.0 recovers M/M/1).  Useful for disk queues, whose service
    times are decidedly non-exponential.
    """
    if arrival_rate < 0 or mean_service <= 0 or service_scv < 0:
        raise ValueError("invalid parameters")
    rho = arrival_rate * mean_service
    _check_stability(rho)
    wq = rho * mean_service * (1.0 + service_scv) / (2.0 * (1.0 - rho))
    lq = arrival_rate * wq
    return QueueMetrics(
        utilization=rho,
        mean_queue_length=lq,
        mean_number_in_system=lq + rho,
        mean_wait=wq,
        mean_response=wq + mean_service,
    )


# -- saturation-aware wrappers ------------------------------------------------
#
# Load sweeps (repro.queueing.plan) walk a multiplier grid that is
# expected to cross saturation; they need the overloaded points reported
# as data, not raised as exceptions.  Each wrapper validates its inputs
# exactly like the bare formula, but maps "rho >= 1" to
# :func:`saturated_metrics` instead of ValueError.


def MM1_saturating(arrival_rate: float, service_rate: float) -> QueueMetrics:
    """:func:`MM1` that reports saturation instead of raising."""
    if arrival_rate < 0 or service_rate <= 0:
        raise ValueError("rates must be positive")
    rho = arrival_rate / service_rate
    if rho >= 1.0:
        return saturated_metrics(rho)
    return MM1(arrival_rate, service_rate)


def erlang_c_saturating(servers: int, offered_load: float) -> float:
    """:func:`erlang_c` that returns 1.0 at/past saturation.

    With every server busy forever, an arrival queues with certainty —
    the continuous limit of the Erlang-C probability as a -> c.
    """
    if servers < 1:
        raise ValueError(f"need >= 1 server, got {servers}")
    if math.isnan(offered_load):
        raise ValueError("offered load is NaN")
    if offered_load < 0:
        raise ValueError(f"negative offered load a={offered_load:.3f}")
    if offered_load >= servers:
        return 1.0
    return erlang_c(servers, offered_load)


def MMc_saturating(
    arrival_rate: float, service_rate: float, servers: int
) -> QueueMetrics:
    """:func:`MMc` that reports saturation instead of raising."""
    if arrival_rate < 0 or service_rate <= 0:
        raise ValueError("rates must be positive")
    if servers < 1:
        raise ValueError(f"need >= 1 server, got {servers}")
    rho = arrival_rate / (service_rate * servers)
    if rho >= 1.0:
        return saturated_metrics(rho)
    return MMc(arrival_rate, service_rate, servers)


def MG1_saturating(
    arrival_rate: float, mean_service: float, service_scv: float
) -> QueueMetrics:
    """:func:`MG1` that reports saturation instead of raising."""
    if arrival_rate < 0 or mean_service <= 0 or service_scv < 0:
        raise ValueError("invalid parameters")
    rho = arrival_rate * mean_service
    if rho >= 1.0:
        return saturated_metrics(rho)
    return MG1(arrival_rate, mean_service, service_scv)
