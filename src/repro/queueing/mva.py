"""Analytic queueing-network solvers: open Jackson networks and MVA.

Liu et al.'s 3-tier model is solved analytically; these are the two
standard solvers for that job:

* :func:`solve_jackson` — open product-form networks: each station is
  an independent M/M/c fed by its aggregate visit rate.
* :func:`solve_mva` — exact Mean-Value Analysis for single-class
  *closed* networks (N interactive users with think time), the model
  behind closed-loop capacity planning.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from .analytic import MMc, MMc_saturating

__all__ = ["AnalyticStation", "JacksonSolution", "MvaSolution",
           "solve_jackson", "solve_jackson_saturating", "solve_mva"]


@dataclass(frozen=True)
class AnalyticStation:
    """One station of an analytic network.

    ``visits`` is the mean number of visits a request makes to this
    station; ``service_time`` the mean time per visit; ``servers`` the
    parallel-server count.
    """

    name: str
    visits: float
    service_time: float
    servers: int = 1

    def __post_init__(self) -> None:
        if self.visits < 0 or self.service_time <= 0 or self.servers < 1:
            raise ValueError(f"invalid station {self!r}")

    @property
    def demand(self) -> float:
        """Total service demand per request (visits x service time)."""
        return self.visits * self.service_time


@dataclass(frozen=True)
class JacksonSolution:
    """Open-network solution: per-station metrics and totals."""

    arrival_rate: float
    station_utilization: dict[str, float]
    station_response: dict[str, float]  # per visit
    mean_latency: float  # per request, over all visits

    @property
    def bottleneck(self) -> str:
        return max(self.station_utilization, key=self.station_utilization.get)

    @property
    def feasible(self) -> bool:
        """True when every station has a steady state (all rho < 1)."""
        return all(u < 1.0 for u in self.station_utilization.values())

    @property
    def saturated_stations(self) -> list[str]:
        """Stations at or past saturation, in definition order."""
        return [s for s, u in self.station_utilization.items() if u >= 1.0]


def solve_jackson(
    stations: Sequence[AnalyticStation], arrival_rate: float
) -> JacksonSolution:
    """Solve an open product-form network at ``arrival_rate`` req/s.

    Raises ``ValueError`` if any station saturates.
    """
    if arrival_rate <= 0:
        raise ValueError(f"arrival rate must be > 0, got {arrival_rate}")
    utilization: dict[str, float] = {}
    response: dict[str, float] = {}
    latency = 0.0
    for station in stations:
        rate_in = arrival_rate * station.visits
        if rate_in == 0:
            utilization[station.name] = 0.0
            response[station.name] = station.service_time
            continue
        metrics = MMc(rate_in, 1.0 / station.service_time, station.servers)
        utilization[station.name] = metrics.utilization
        response[station.name] = metrics.mean_response
        latency += station.visits * metrics.mean_response
    return JacksonSolution(
        arrival_rate=arrival_rate,
        station_utilization=utilization,
        station_response=response,
        mean_latency=latency,
    )


def solve_jackson_saturating(
    stations: Sequence[AnalyticStation], arrival_rate: float
) -> JacksonSolution:
    """:func:`solve_jackson` that reports saturation instead of raising.

    Stations at or past rho = 1 carry their true (>= 1) utilization and
    an infinite per-visit response; the request latency is then
    infinite too, and :attr:`JacksonSolution.feasible` is False.  A
    load sweep that crosses the knee gets the whole curve back as data.
    """
    if arrival_rate <= 0:
        raise ValueError(f"arrival rate must be > 0, got {arrival_rate}")
    utilization: dict[str, float] = {}
    response: dict[str, float] = {}
    latency = 0.0
    for station in stations:
        rate_in = arrival_rate * station.visits
        if rate_in == 0:
            utilization[station.name] = 0.0
            response[station.name] = station.service_time
            continue
        metrics = MMc_saturating(
            rate_in, 1.0 / station.service_time, station.servers
        )
        utilization[station.name] = metrics.utilization
        response[station.name] = metrics.mean_response
        latency += station.visits * metrics.mean_response
    return JacksonSolution(
        arrival_rate=arrival_rate,
        station_utilization=utilization,
        station_response=response,
        mean_latency=latency,
    )


@dataclass(frozen=True)
class MvaSolution:
    """Closed-network solution at population N."""

    n_customers: int
    throughput: float
    response_time: float  # total time in stations per cycle
    queue_lengths: dict[str, float]

    @property
    def cycle_time(self) -> float:
        """Response time + think time (derivable from throughput).

        A zero-throughput solution has an infinite cycle: customers
        never complete, so the honest answer is ``inf``, not 0.
        """
        return (
            self.n_customers / self.throughput
            if self.throughput
            else math.inf
        )


def solve_mva(
    stations: Sequence[AnalyticStation],
    n_customers: int,
    think_time: float = 0.0,
) -> MvaSolution:
    """Exact single-class MVA for a closed network of queueing stations.

    Stations are treated as single-queue FCFS (multi-server stations
    are approximated by dividing service time by the server count —
    the standard load-dependent shortcut).
    """
    if n_customers < 1:
        raise ValueError(f"need >= 1 customer, got {n_customers}")
    if think_time < 0:
        raise ValueError(f"think time must be >= 0, got {think_time}")
    demands = [s.demand / s.servers for s in stations]
    queue = [0.0] * len(stations)
    throughput = 0.0
    for n in range(1, n_customers + 1):
        residence = [
            d * (1.0 + q) for d, q in zip(demands, queue)
        ]
        total_residence = sum(residence)
        throughput = n / (think_time + total_residence)
        queue = [throughput * r for r in residence]
    return MvaSolution(
        n_customers=n_customers,
        throughput=throughput,
        response_time=n_customers / throughput - think_time,
        queue_lengths={s.name: q for s, q in zip(stations, queue)},
    )
