"""Queueing substrate: arrival processes, analytic queues, networks.

Provides the arrival-process zoo used by open-loop workload clients,
distribution fitting with KS-test selection (Feitelson's method),
closed-form M/M/1, M/M/c and M/G/1 results, and a class-routed
multi-station queueing-network simulator — the machinery of the
in-depth modeling baseline.
"""

from .analytic import (
    MG1,
    MG1_saturating,
    MM1,
    MM1_saturating,
    MMc,
    MMc_saturating,
    QueueMetrics,
    erlang_c,
    erlang_c_saturating,
    saturated_metrics,
)
from .arrivals import (
    ArrivalProcess,
    BModelArrivals,
    DeterministicArrivals,
    DistributionArrivals,
    EmpiricalArrivals,
    MMPPArrivals,
    PoissonArrivals,
)
from .autocorrelated import CopulaArrivals, fit_ar_coefficients
from .fitting import CANDIDATE_FAMILIES, FittedDistribution, fit_distribution
from .lqn import Activity, LqnResult, LqnSimulator, LqnTask
from .mva import (
    AnalyticStation,
    JacksonSolution,
    MvaSolution,
    solve_jackson,
    solve_jackson_saturating,
    solve_mva,
)
from .network import NetworkResult, QueueingNetwork, Station, StationVisit
from .plan import (
    CapacityPlan,
    ClassDemand,
    ClusterModel,
    PlanPoint,
    ValidationPoint,
    cross_validate,
    fit_cluster_model,
    parse_multipliers,
    plan_sweep,
    solve_point,
)

__all__ = [
    "Activity",
    "AnalyticStation",
    "ArrivalProcess",
    "BModelArrivals",
    "CANDIDATE_FAMILIES",
    "CapacityPlan",
    "ClassDemand",
    "ClusterModel",
    "CopulaArrivals",
    "JacksonSolution",
    "fit_ar_coefficients",
    "LqnResult",
    "LqnSimulator",
    "LqnTask",
    "MvaSolution",
    "PlanPoint",
    "QueueMetrics",
    "ValidationPoint",
    "cross_validate",
    "fit_cluster_model",
    "parse_multipliers",
    "plan_sweep",
    "solve_jackson",
    "solve_jackson_saturating",
    "solve_mva",
    "solve_point",
    "DeterministicArrivals",
    "DistributionArrivals",
    "EmpiricalArrivals",
    "FittedDistribution",
    "MG1",
    "MG1_saturating",
    "MM1",
    "MM1_saturating",
    "MMc",
    "MMc_saturating",
    "MMPPArrivals",
    "NetworkResult",
    "PoissonArrivals",
    "QueueingNetwork",
    "Station",
    "StationVisit",
    "erlang_c",
    "erlang_c_saturating",
    "fit_distribution",
    "saturated_metrics",
]
