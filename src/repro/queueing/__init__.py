"""Queueing substrate: arrival processes, analytic queues, networks.

Provides the arrival-process zoo used by open-loop workload clients,
distribution fitting with KS-test selection (Feitelson's method),
closed-form M/M/1, M/M/c and M/G/1 results, and a class-routed
multi-station queueing-network simulator — the machinery of the
in-depth modeling baseline.
"""

from .analytic import MG1, MM1, MMc, erlang_c
from .arrivals import (
    ArrivalProcess,
    BModelArrivals,
    DeterministicArrivals,
    DistributionArrivals,
    EmpiricalArrivals,
    MMPPArrivals,
    PoissonArrivals,
)
from .autocorrelated import CopulaArrivals, fit_ar_coefficients
from .fitting import CANDIDATE_FAMILIES, FittedDistribution, fit_distribution
from .lqn import Activity, LqnResult, LqnSimulator, LqnTask
from .mva import (
    AnalyticStation,
    JacksonSolution,
    MvaSolution,
    solve_jackson,
    solve_mva,
)
from .network import NetworkResult, QueueingNetwork, Station, StationVisit

__all__ = [
    "Activity",
    "AnalyticStation",
    "ArrivalProcess",
    "BModelArrivals",
    "CANDIDATE_FAMILIES",
    "CopulaArrivals",
    "JacksonSolution",
    "fit_ar_coefficients",
    "LqnResult",
    "LqnSimulator",
    "LqnTask",
    "MvaSolution",
    "solve_jackson",
    "solve_mva",
    "DeterministicArrivals",
    "DistributionArrivals",
    "EmpiricalArrivals",
    "FittedDistribution",
    "MG1",
    "MM1",
    "MMc",
    "MMPPArrivals",
    "NetworkResult",
    "PoissonArrivals",
    "QueueingNetwork",
    "Station",
    "StationVisit",
    "erlang_c",
    "fit_distribution",
]
