"""3-tier web application — the in-depth family's native workload.

Liu et al. model "Web, Application and Database tier" request flows;
this module simulates that application: a request traverses web ->
app -> db tiers (each with its own machines), performs database I/O,
and returns through the tiers.  Spans reuse the canonical subsystem
stage names so the same model trainers work unchanged across
applications ("the basic structure of the model remains the same
across different applications", §4).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..simulation import Environment, RandomStreams
from ..tracing import READ, WRITE, RequestRecord, Tracer
from .gfs import HEADER_BYTES
from .machine import Machine, MachineSpec

__all__ = ["WebAppCluster", "WebAppSpec", "WebRequest", "WebRequestClass"]

KIB = 1024


@dataclass(frozen=True)
class WebRequestClass:
    """One request class of the 3-tier application (TPC-W flavored)."""

    name: str
    weight: float
    db_op: str  # READ | WRITE
    db_io_bytes: int
    response_bytes: int
    memory_bytes: int  # per-tier buffer footprint
    web_cpu: float  # core-seconds on the web tier
    app_cpu: float
    db_cpu: float


#: A TPC-W-like browsing-heavy mix.
DEFAULT_CLASSES = (
    WebRequestClass(
        name="browse",
        weight=0.6,
        db_op=READ,
        db_io_bytes=8 * KIB,
        response_bytes=32 * KIB,
        memory_bytes=8 * KIB,
        web_cpu=60e-6,
        app_cpu=150e-6,
        db_cpu=80e-6,
    ),
    WebRequestClass(
        name="search",
        weight=0.25,
        db_op=READ,
        db_io_bytes=64 * KIB,
        response_bytes=16 * KIB,
        memory_bytes=32 * KIB,
        web_cpu=60e-6,
        app_cpu=400e-6,
        db_cpu=250e-6,
    ),
    WebRequestClass(
        name="order",
        weight=0.15,
        db_op=WRITE,
        db_io_bytes=16 * KIB,
        response_bytes=4 * KIB,
        memory_bytes=16 * KIB,
        web_cpu=80e-6,
        app_cpu=300e-6,
        db_cpu=200e-6,
    ),
)


@dataclass(frozen=True)
class WebAppSpec:
    """Cluster shape and request classes of the 3-tier application."""

    web_servers: int = 2
    app_servers: int = 2
    db_servers: int = 1
    classes: tuple[WebRequestClass, ...] = DEFAULT_CLASSES
    db_working_set_blocks: int = 1 << 22

    def __post_init__(self) -> None:
        if min(self.web_servers, self.app_servers, self.db_servers) < 1:
            raise ValueError("every tier needs >= 1 server")
        if not self.classes:
            raise ValueError("need at least one request class")


@dataclass(slots=True)
class WebRequest:
    """One user request against the 3-tier application."""

    request_class: str
    db_op: str
    db_io_bytes: int
    db_lbn: int
    response_bytes: int
    memory_bytes: int
    web_cpu: float
    app_cpu: float
    db_cpu: float


class WebAppCluster:
    """Web, application and database tiers servicing user requests."""

    def __init__(
        self,
        env: Environment,
        spec: WebAppSpec,
        streams: RandomStreams,
        tracer: Tracer,
        machine_spec: MachineSpec | None = None,
    ):
        machine_spec = machine_spec or MachineSpec()
        self.env = env
        self.spec = spec
        self.tracer = tracer
        self.rng = streams.get("webapp/placement")
        self.web = [
            Machine(env, f"web-{i}", machine_spec, streams, tracer)
            for i in range(spec.web_servers)
        ]
        self.app = [
            Machine(env, f"app-{i}", machine_spec, streams, tracer)
            for i in range(spec.app_servers)
        ]
        self.db = [
            Machine(env, f"db-{i}", machine_spec, streams, tracer)
            for i in range(spec.db_servers)
        ]
        self._rr = {"web": 0, "app": 0, "db": 0}
        self._buffer_cursor = 0
        weights = np.array([c.weight for c in spec.classes], dtype=float)
        self._class_probs = weights / weights.sum()
        # Precomputed cdf: searchsorted on one raw double draws the same
        # index sequence as ``choice(n, p=...)`` at a fraction of the cost.
        self._class_cdf = self._class_probs.cumsum()
        self._class_cdf /= self._class_cdf[-1]

    def _pick(self, tier: str, machines: list[Machine]) -> Machine:
        machine = machines[self._rr[tier] % len(machines)]
        self._rr[tier] += 1
        return machine

    def make_request(self, rng: np.random.Generator) -> WebRequest:
        """Draw a request from the class mix (random DB block)."""
        index = int(self._class_cdf.searchsorted(rng.random(), side="right"))
        rc = self.spec.classes[index]
        lbn = int(rng.integers(0, self.spec.db_working_set_blocks))
        return WebRequest(
            request_class=rc.name,
            db_op=rc.db_op,
            db_io_bytes=rc.db_io_bytes,
            db_lbn=lbn,
            response_bytes=rc.response_bytes,
            memory_bytes=rc.memory_bytes,
            web_cpu=rc.web_cpu,
            app_cpu=rc.app_cpu,
            db_cpu=rc.db_cpu,
        )

    def _buffer_address(self, size_bytes: int) -> int:
        address = self._buffer_cursor
        self._buffer_cursor = (address + size_bytes) % (1 << 26)
        return address

    def client_request(self, request: WebRequest):
        """Process generator: one request through all three tiers."""
        env = self.env
        tracer = self.tracer
        request_id = tracer.new_request_id()
        web = self._pick("web", self.web)
        app = self._pick("app", self.app)
        db = self._pick("db", self.db)
        record = RequestRecord(
            request_id=request_id,
            request_class=request.request_class,
            server=web.name,
            arrival_time=env.now,
            network_bytes=request.response_bytes,
            memory_bytes=request.memory_bytes * 3,
            memory_op=READ if request.db_op == READ else WRITE,
            storage_bytes=request.db_io_bytes,
            storage_op=request.db_op,
        )
        root = tracer.start_span(request_id, "request", web.name, env.now)
        cpu_busy = 0.0

        def span(name: str, machine: Machine):
            return tracer.start_span(request_id, name, machine.name, env.now, root)

        # -- request path ---------------------------------------------------
        s = span("network_rx", web)
        yield env.process(web.nic.transfer(request_id, HEADER_BYTES, "rx"))
        tracer.end_span(s, env.now)

        for machine, work in ((web, request.web_cpu), (app, request.app_cpu),
                              (db, request.db_cpu)):
            s = span("cpu_lookup", machine)
            busy = yield env.process(
                machine.cpu.compute(request_id, work, "lookup")
            )
            cpu_busy += busy
            tracer.end_span(s, env.now)
            s = span("memory", machine)
            address = self._buffer_address(request.memory_bytes)
            yield env.process(
                machine.memory.access(
                    request_id,
                    address,
                    request.memory_bytes,
                    record.memory_op,
                )
            )
            tracer.end_span(s, env.now)
            if machine is not db:
                s = span("network_rx", machine)  # forward to next tier
                yield env.process(
                    machine.nic.transfer(request_id, HEADER_BYTES, "tx")
                )
                tracer.end_span(s, env.now)

        # -- database I/O ----------------------------------------------------
        s = span("storage", db)
        yield env.process(
            db.disk.io(request_id, request.db_lbn, request.db_io_bytes, request.db_op)
        )
        tracer.end_span(s, env.now)

        # -- response path ----------------------------------------------------
        for machine, work in ((db, request.db_cpu * 0.3),
                              (app, request.app_cpu * 0.3),
                              (web, request.web_cpu * 0.5)):
            s = span("cpu_aggregate", machine)
            busy = yield env.process(
                machine.cpu.compute(request_id, work, "aggregate")
            )
            cpu_busy += busy
            tracer.end_span(s, env.now)

        s = span("network_tx", web)
        yield env.process(
            web.nic.transfer(request_id, request.response_bytes, "tx")
        )
        tracer.end_span(s, env.now)

        record.cpu_busy_seconds = cpu_busy
        record.completion_time = env.now
        tracer.end_span(root, env.now)
        tracer.record_request(record)
        return record
