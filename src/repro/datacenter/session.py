"""Replica sessions: stepwise-driven workload runs with checkpoint/restore.

A :class:`ReplicaSession` owns the full substrate of one workload
replica — engine, RNG stream factory, tracer, cluster, client — and
exposes it *stepwise*: callers advance the simulation in increments
(``run(until=...)``, :meth:`advance_progress`), snapshot it between
steps (:meth:`checkpoint`), and rebuild a byte-identical live session
from a snapshot (:meth:`restore`).  The one-call drivers in
:mod:`repro.datacenter.run` wire the exact same components through the
builder functions here, so a session replays precisely what a
single-shot run executes.

Checkpoints are *replay recipes*, not frame dumps: simulation processes
are live Python generators, which cannot be serialized, but every
replica is a pure function of its spec — so a checkpoint records the
spec, the engine's step count, the fork history, and validation digests
(engine fingerprint, full RNG tree state, tracer counters).  Restore
re-executes the replica for exactly that many steps, re-applies forks
at their recorded step counts, then verifies the digests; any drift
(changed code, changed inputs) raises
:class:`~repro.snapshot.SnapshotMismatchError` instead of silently
continuing from a different state.

:meth:`fork` turns one warmed-up session into independent determinstic
branches: it re-keys the whole RNG tree in place (see
:meth:`repro.simulation.RandomStreams.fork`), so two sessions restored
from the same checkpoint and forked with different keys share their
entire history and diverge only through their fork keys.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Mapping, Optional

from ..queueing import PoissonArrivals
from ..simulation import Environment, RandomStreams, SimulationError
from ..simulation.checkpoint import engine_digest, verify_engine_digest
from ..snapshot import SnapshotMismatchError, check_state, make_state
from ..tracing import Tracer
from ..workloads import OpenLoopClient, table2_mix
from .gfs import GfsCluster, GfsSpec
from .mapreduce import MapReduceCluster, MapReduceJob, MapReduceSpec
from .webapp import WebAppCluster, WebAppSpec

__all__ = [
    "ReplicaSession",
    "default_mapreduce_jobs",
    "replica_streams",
    "build_gfs_session",
    "build_mapreduce_session",
    "build_webapp_session",
]

CHECKPOINT_KIND = "replica-checkpoint"


def replica_streams(seed: int, index: int) -> RandomStreams:
    """The stream factory for replica ``index`` of a fleet seeded ``seed``.

    Pure function of ``(seed, index)`` — workers reconstruct it locally,
    so no generator state crosses process boundaries.
    """
    return RandomStreams(seed).spawn("replica").spawn(str(index))


def default_mapreduce_jobs(rng, n_jobs: int = 8) -> list[MapReduceJob]:
    """Synthesize the standard batch of small MapReduce jobs."""
    return [
        MapReduceJob(
            name=f"job-{i}",
            input_bytes=int(rng.integers(16, 256)) * 1024 * 1024,
            n_map=int(rng.integers(2, 9)),
            n_reduce=int(rng.integers(1, 5)),
        )
        for i in range(n_jobs)
    ]


class _NullSink:
    """A tracer sink that discards records (checkpoint replay)."""

    def write(self, stream: str, record) -> None:
        pass


@dataclass
class SessionParts:
    """Everything one replica's wiring produced, before any event runs."""

    env: Environment
    streams: RandomStreams
    tracer: Tracer
    cluster: Any
    client: Optional[OpenLoopClient]
    #: Progress denominator: requests to complete (gfs/webapp) or jobs
    #: to finish (mapreduce).
    total_progress: int


def build_gfs_session(
    n_requests: int,
    streams: RandomStreams,
    tracer: Tracer,
    arrival_rate: float = 25.0,
    mix_factory=table2_mix,
    gfs_spec: Optional[GfsSpec] = None,
    machine_spec=None,
    arrivals=None,
) -> SessionParts:
    """Wire a GFS replica (cluster, mix, arrivals, client) without running.

    Component creation order is the determinism contract: cluster, then
    mix, then arrivals, then client start — every stochastic draw
    happens in this order, so a session built twice from equal inputs
    is bit-identical.
    """
    env = Environment()
    cluster = GfsCluster(env, gfs_spec or GfsSpec(), streams, tracer, machine_spec)
    mix = mix_factory(streams.get("workload/mix"))
    if arrivals is None:
        arrivals = PoissonArrivals(arrival_rate, streams.buffered("workload/arrivals"))
    client = OpenLoopClient(env, cluster.client_request, mix.make_request, arrivals)
    client.start(n_requests)
    return SessionParts(env, streams, tracer, cluster, client, n_requests)


def build_webapp_session(
    n_requests: int,
    streams: RandomStreams,
    tracer: Tracer,
    arrival_rate: float = 120.0,
    webapp_spec: Optional[WebAppSpec] = None,
    machine_spec=None,
    arrivals=None,
) -> SessionParts:
    """Wire a 3-tier web replica without running (same order contract)."""
    env = Environment()
    cluster = WebAppCluster(
        env, webapp_spec or WebAppSpec(), streams, tracer, machine_spec
    )
    request_rng = streams.get("workload/requests")
    if arrivals is None:
        arrivals = PoissonArrivals(arrival_rate, streams.buffered("workload/arrivals"))
    client = OpenLoopClient(
        env,
        cluster.client_request,
        lambda: cluster.make_request(request_rng),
        arrivals,
    )
    client.start(n_requests)
    return SessionParts(env, streams, tracer, cluster, client, n_requests)


def build_mapreduce_session(
    streams: RandomStreams,
    tracer: Tracer,
    jobs: Optional[list[MapReduceJob]] = None,
    spec: Optional[MapReduceSpec] = None,
    machine_spec=None,
) -> SessionParts:
    """Wire a MapReduce replica without running (same order contract)."""
    if jobs is None:
        jobs = default_mapreduce_jobs(streams.get("workload/jobs"))
    env = Environment()
    cluster = MapReduceCluster(env, spec or MapReduceSpec(), streams, tracer, machine_spec)

    def driver(env):
        for job in jobs:
            yield env.process(cluster.run_job(job))

    env.process(driver(env))
    return SessionParts(env, streams, tracer, cluster, None, len(jobs))


class ReplicaSession:
    """One live, checkpointable replica of a standard fleet workload.

    Built from a :class:`~repro.datacenter.fleet.ReplicaSpec` (or any
    object with its fields).  The session is inert until driven:
    :meth:`run`, :meth:`advance_progress` or :meth:`run_to_completion`
    step the engine; :meth:`checkpoint` may be called between any two
    steps.
    """

    def __init__(self, spec, tracer: Optional[Tracer] = None):
        if spec.app not in ("gfs", "webapp", "mapreduce"):
            raise ValueError(f"unknown app {spec.app!r}")
        self.spec = spec
        streams = replica_streams(spec.seed, spec.index)
        if tracer is None:
            tracer = Tracer(sample_every=spec.sample_every)
        if spec.app == "gfs":
            parts = build_gfs_session(
                spec.n_requests, streams, tracer, arrival_rate=spec.arrival_rate
            )
        elif spec.app == "webapp":
            parts = build_webapp_session(
                spec.n_requests, streams, tracer, arrival_rate=spec.arrival_rate
            )
        else:
            parts = build_mapreduce_session(streams, tracer)
        self.env = parts.env
        self.streams = parts.streams
        self.tracer = parts.tracer
        self.cluster = parts.cluster
        self.client = parts.client
        self.total_progress = parts.total_progress
        self._fork_history: list[tuple[int, str]] = []

    # -- driving -------------------------------------------------------------

    @property
    def traces(self):
        return self.tracer.traces

    def progress(self) -> int:
        """Completed requests (gfs/webapp) or finished jobs (mapreduce)."""
        if self.spec.app == "mapreduce":
            return len(self.cluster.results)
        return self.tracer.emitted["requests"]

    def done(self) -> bool:
        return not self.env._queue

    def run(self, until: Optional[float] = None) -> None:
        """Advance to ``until`` (or exhaustion), as ``Environment.run``."""
        self.env.run(until)

    def run_to_completion(self) -> None:
        self.env.run()

    def advance_progress(self, target: int) -> None:
        """Step until at least ``target`` progress units have completed.

        Stops *between* engine steps, so a checkpoint taken here replays
        exactly.  Running out of events before the target simply stops
        (the replica is finished).
        """
        while self.env._queue and self.progress() < target:
            self.env.step()

    def window_target(self, window: int, n_windows: int) -> int:
        """Progress owed by the end of window ``window`` (0-based)."""
        if not 0 <= window < n_windows:
            raise ValueError(f"window {window} outside 0..{n_windows - 1}")
        return -(-self.total_progress * (window + 1) // n_windows)

    def duration(self) -> float:
        """The replica duration a single-shot run would report so far.

        GFS runs report ``env.now``; webapp and mapreduce report the
        streamed-record extent, which the caller tracks on its shard
        writer — here approximated by ``env.now`` only for gfs.
        """
        return self.env.now

    # -- forking -------------------------------------------------------------

    def fork(self, key: str) -> "ReplicaSession":
        """Re-key this session's randomness as deterministic branch ``key``.

        Applied in place between engine steps; everything already
        simulated is shared history, every future draw derives from the
        fork key.  Recorded in checkpoints (with the step count it was
        applied at) so a forked session's own checkpoints restore
        correctly.  Returns ``self`` for chaining.
        """
        self.streams.fork(key)
        self._fork_history.append((self.env.steps, key))
        return self

    # -- snapshots ------------------------------------------------------------

    def checkpoint(self) -> dict[str, Any]:
        """A JSON-able replay recipe + validation digests for this moment."""
        spec = self.spec
        return make_state(
            CHECKPOINT_KIND,
            {
                "spec": {
                    "app": spec.app,
                    "index": spec.index,
                    "seed": spec.seed,
                    "n_requests": spec.n_requests,
                    "arrival_rate": spec.arrival_rate,
                    "sample_every": spec.sample_every,
                },
                "engine": engine_digest(self.env),
                "rng": self.streams.state(),
                "forks": [[steps, key] for steps, key in self._fork_history],
                "tracer": {
                    "request_counter": self.tracer._request_counter,
                    "next_span_id": self.tracer._next_span_id,
                    "spans_flushed": self.tracer._spans_flushed,
                    "emitted": dict(self.tracer.emitted),
                },
                "progress": self.progress(),
            },
        )

    def _replay_steps(self, target_steps: int) -> None:
        try:
            while self.env.steps < target_steps:
                self.env.step()
        except SimulationError as error:
            raise SnapshotMismatchError(
                f"replay ran out of events at step {self.env.steps} "
                f"(checkpoint recorded {target_steps}): {error}"
            )

    @classmethod
    def restore(
        cls, state: Mapping[str, Any], keep_records: bool = True
    ) -> "ReplicaSession":
        """Rebuild a live session by deterministic replay, then validate.

        The replayed session's tracer discards records (they were
        already delivered — to memory or to earlier window shards — by
        the run that checkpointed); callers continuing a windowed
        collection attach their real sink afterwards
        (``session.tracer.sink = writer``).  With ``keep_records=True``
        the replay *re-accumulates* ``traces`` in memory, so the
        restored session's in-memory trace set continues exactly as the
        original's would.

        Raises :class:`SnapshotMismatchError` when the replay does not
        land on the recorded digests — the code or inputs changed
        between save and restore.
        """
        check_state(state, CHECKPOINT_KIND)
        from .fleet import ReplicaSpec  # local import: fleet imports us

        spec = ReplicaSpec(**state["spec"])
        sink = None if keep_records else _NullSink()
        tracer = Tracer(
            sample_every=spec.sample_every, sink=sink, keep_records=keep_records
        )
        session = cls(spec, tracer=tracer)
        engine = state["engine"]
        for steps, key in state.get("forks", []):
            session._replay_steps(int(steps))
            session.streams.fork(str(key))
            session._fork_history.append((int(steps), str(key)))
        session._replay_steps(int(engine["steps"]))
        # ``run(until=t)`` parks the clock at ``t`` even when the last
        # event fired earlier; replay can only recover event times, so
        # the recorded clock is restored explicitly before validating.
        session.env._now = float(engine["now"])
        verify_engine_digest(session.env, engine, context=f"replica {spec.index}")
        session._validate_rng(state["rng"])
        session._restore_tracer(state["tracer"], spec.index)
        if session.progress() != int(state["progress"]):
            raise SnapshotMismatchError(
                f"replica {spec.index} replay progress "
                f"{session.progress()} != recorded {state['progress']}"
            )
        if not keep_records:
            session.tracer.sink = None
        return session

    def _validate_rng(self, recorded: Mapping[str, Any]) -> None:
        canonical = lambda s: json.dumps(s, sort_keys=True)  # noqa: E731
        replayed = json.loads(canonical(self.streams.state()))
        if canonical(replayed) != canonical(recorded):
            raise SnapshotMismatchError(
                f"replica {self.spec.index} RNG state diverged from "
                "checkpoint after replay; the code or inputs changed "
                "between save and restore"
            )

    def _restore_tracer(self, recorded: Mapping[str, Any], index: int) -> None:
        tracer = self.tracer
        mismatches = []
        if tracer._request_counter != int(recorded["request_counter"]):
            mismatches.append("request_counter")
        if tracer._next_span_id != int(recorded["next_span_id"]):
            mismatches.append("next_span_id")
        for stream, count in recorded["emitted"].items():
            if stream != "spans" and tracer.emitted.get(stream) != int(count):
                mismatches.append(f"emitted[{stream}]")
        if mismatches:
            raise SnapshotMismatchError(
                f"replica {index} tracer state diverged from checkpoint "
                f"after replay ({', '.join(mismatches)})"
            )
        # Spans flushed before the checkpoint already live in earlier
        # window shards; drop the replayed copies and realign counters.
        flushed = int(recorded["spans_flushed"])
        del tracer.traces.spans[: flushed - tracer._spans_base]
        tracer._spans_flushed = flushed
        tracer._spans_base = flushed
        tracer.emitted["spans"] = int(recorded["emitted"].get("spans", flushed))
