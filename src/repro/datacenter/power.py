"""Server power and energy modeling (paper §5).

"Studying these correlations can facilitate the development of a
performance and power model for the datacenter, enabling system
studies that would otherwise be impractical from a cost and time
perspective."  This module provides that model: utilization-linear
device power (the standard DC power model of the era — Barroso's
energy-proportionality framing), energy accounting over a simulation
or replay window, and per-request energy efficiency metrics.
"""

from __future__ import annotations

from dataclasses import dataclass

from .machine import Machine

__all__ = ["EnergyReport", "MachinePowerSpec", "PowerModel"]


@dataclass(frozen=True)
class MachinePowerSpec:
    """Idle/peak power per device, in watts.

    Defaults approximate a 2011 2-socket server: ~150 W idle, ~300 W
    peak, with CPU the dominant dynamic term.
    """

    cpu_idle: float = 70.0
    cpu_peak: float = 190.0
    memory_idle: float = 25.0
    memory_peak: float = 45.0
    disk_idle: float = 7.0
    disk_peak: float = 12.0
    nic_idle: float = 4.0
    nic_peak: float = 8.0
    platform: float = 45.0  # fans, VRMs, board — utilization-independent

    def __post_init__(self) -> None:
        for device in ("cpu", "memory", "disk", "nic"):
            idle = getattr(self, f"{device}_idle")
            peak = getattr(self, f"{device}_peak")
            if idle < 0 or peak < idle:
                raise ValueError(
                    f"{device}: need 0 <= idle <= peak, got {idle}/{peak}"
                )

    @property
    def idle_power(self) -> float:
        """Whole-server idle draw."""
        return (
            self.cpu_idle
            + self.memory_idle
            + self.disk_idle
            + self.nic_idle
            + self.platform
        )

    @property
    def peak_power(self) -> float:
        """Whole-server peak draw."""
        return (
            self.cpu_peak
            + self.memory_peak
            + self.disk_peak
            + self.nic_peak
            + self.platform
        )


@dataclass
class EnergyReport:
    """Energy accounting for one machine over a window."""

    machine: str
    window: float  # seconds
    utilization: dict[str, float]
    power: dict[str, float]  # mean watts per device
    platform_power: float

    @property
    def mean_power(self) -> float:
        """Whole-server mean power over the window (watts)."""
        return sum(self.power.values()) + self.platform_power

    @property
    def energy_joules(self) -> float:
        return self.mean_power * self.window

    def describe(self) -> str:
        parts = ", ".join(
            f"{device}={watts:.1f}W" for device, watts in self.power.items()
        )
        return (
            f"{self.machine}: {self.mean_power:.1f} W over "
            f"{self.window:.2f}s ({parts}, platform="
            f"{self.platform_power:.1f}W)"
        )


class PowerModel:
    """Maps device utilizations to power draw and energy."""

    def __init__(self, spec: MachinePowerSpec | None = None):
        self.spec = spec or MachinePowerSpec()

    def device_power(self, device: str, utilization: float) -> float:
        """Linear idle→peak interpolation for one device."""
        if not 0.0 <= utilization <= 1.0 + 1e-9:
            raise ValueError(f"utilization must be in [0,1], got {utilization}")
        idle = getattr(self.spec, f"{device}_idle")
        peak = getattr(self.spec, f"{device}_peak")
        return idle + (peak - idle) * min(1.0, utilization)

    def report(self, machine: Machine, since: float = 0.0) -> EnergyReport:
        """Energy report for a machine from its utilization meters."""
        window = machine.env.now - since
        if window <= 0:
            raise ValueError(f"empty accounting window (since={since})")
        utilization = machine.utilization_report(since)
        power = {
            device: self.device_power(device, value)
            for device, value in utilization.items()
        }
        return EnergyReport(
            machine=machine.name,
            window=window,
            utilization=utilization,
            power=power,
            platform_power=self.spec.platform,
        )

    def energy_per_request(
        self, machines: list[Machine], n_requests: int, since: float = 0.0
    ) -> float:
        """Mean joules per completed request across a set of machines.

        The TCO-flavored efficiency metric the paper's server-
        configuration use case optimizes.
        """
        if n_requests < 1:
            raise ValueError(f"need >= 1 request, got {n_requests}")
        total = sum(self.report(m, since).energy_joules for m in machines)
        return total / n_requests
