"""DVFS policy evaluation driven by the CPU-utilization model (Huang et al.).

"Energy-Efficient Cluster Computing via Accurate Workload
Characterization": predict the next window's CPU utilization from the
workload model and switch to a low-power state when the predicted
demand fits — saving energy during long off-chip/batch-I/O phases
without hurting performance.

The evaluator replays a utilization series under a frequency policy:
per window, the policy picks a frequency; running work ``u`` at
relative frequency ``f`` needs ``u / f`` of the window, so any window
with ``u > f`` overruns (an SLA violation).  Energy integrates the
frequency-specific power curve.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Sequence

import numpy as np

if TYPE_CHECKING:  # avoid a datacenter <-> breadth import cycle
    from ..breadth.cpu import CpuUtilizationModel

__all__ = ["DvfsPolicyResult", "DvfsSetting", "evaluate_dvfs_policy",
           "model_guided_policy"]


@dataclass(frozen=True)
class DvfsSetting:
    """One frequency step: relative speed and its power curve."""

    name: str
    frequency: float  # relative to nominal, in (0, 1]
    idle_power: float  # watts at zero utilization
    peak_power: float  # watts at full utilization

    def __post_init__(self) -> None:
        if not 0.0 < self.frequency <= 1.0:
            raise ValueError(f"frequency must be in (0,1], got {self.frequency}")
        if self.idle_power < 0 or self.peak_power < self.idle_power:
            raise ValueError("need 0 <= idle <= peak power")

    def power(self, utilization: float) -> float:
        """Draw at a given *delivered* utilization of this step."""
        u = min(1.0, max(0.0, utilization))
        return self.idle_power + (self.peak_power - self.idle_power) * u


#: A policy maps (recent utilization history) -> chosen setting index.
Policy = Callable[[Sequence[float]], int]


@dataclass
class DvfsPolicyResult:
    """Outcome of evaluating a policy over a utilization series."""

    energy_joules: float
    violations: int
    n_windows: int
    settings_used: dict[str, int]

    @property
    def violation_rate(self) -> float:
        return self.violations / self.n_windows if self.n_windows else 0.0


def evaluate_dvfs_policy(
    utilization: Sequence[float],
    settings: Sequence[DvfsSetting],
    policy: Policy,
    window: float = 1.0,
) -> DvfsPolicyResult:
    """Replay a utilization series under a frequency policy."""
    series = np.asarray(utilization, dtype=float)
    if series.size == 0:
        raise ValueError("empty utilization series")
    if not settings:
        raise ValueError("need at least one DVFS setting")
    if window <= 0:
        raise ValueError(f"window must be > 0, got {window}")
    energy = 0.0
    violations = 0
    used: dict[str, int] = {s.name: 0 for s in settings}
    for i, demand in enumerate(series):
        choice = policy(series[: i + 1])
        if not 0 <= choice < len(settings):
            raise ValueError(f"policy chose invalid setting {choice}")
        setting = settings[choice]
        used[setting.name] += 1
        # Work u at frequency f occupies u/f of the window.
        occupancy = demand / setting.frequency
        if occupancy > 1.0 + 1e-9:
            violations += 1
            occupancy = 1.0
        energy += setting.power(occupancy) * window
    return DvfsPolicyResult(
        energy_joules=energy,
        violations=violations,
        n_windows=int(series.size),
        settings_used=used,
    )


def model_guided_policy(
    model: "CpuUtilizationModel",
    settings: Sequence[DvfsSetting],
    headroom: float = 1.25,
) -> Policy:
    """Huang-style policy: pick the slowest setting whose frequency
    covers the *predicted* next-window utilization with ``headroom``."""
    if headroom < 1.0:
        raise ValueError(f"headroom must be >= 1, got {headroom}")
    order = sorted(
        range(len(settings)), key=lambda i: settings[i].frequency
    )

    def policy(history: Sequence[float]) -> int:
        predicted = model.predict_next(history)
        for index in order:
            if settings[index].frequency >= min(1.0, predicted * headroom):
                return index
        return order[-1]  # fastest setting as the fallback

    return policy
