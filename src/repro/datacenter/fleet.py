"""Fleet driver: N independent workload replicas, sharded across processes.

The paper's KOOZA validation trains on traces from many independent
workload runs; collecting them one-at-a-time in a single process wastes
every core but one.  This driver fans ``replicas`` independent copies of
one of the three standard workloads (:func:`run_gfs_workload`,
:func:`run_webapp_workload`, :func:`run_mapreduce_jobs`) across worker
processes and merges their traces into a single :class:`TraceSet`.

Two properties make the merged result well-defined:

* **Deterministic sharding** — replica ``k`` seeds every stochastic
  component from the stream path ``("replica", str(k))`` under the
  fleet seed, so its traces are bit-identical no matter which worker
  process runs it or how many workers exist.  (This is exactly the
  disjointness contract the fixed :class:`RandomStreams` segment
  encoding provides; the old per-character keys could alias replica
  substreams onto workload-internal ones.)
* **Monotonic merge** — each replica's clock starts at zero, so replica
  ``k``'s records are shifted by the summed extent of replicas
  ``0..k-1`` before merging, and its request/span identifiers are
  shifted past its predecessors'.  Merged timestamps are then globally
  ordered by replica, and identifiers remain unique, so downstream
  consumers (model trainers, characterization) see one coherent trace.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Optional

from ..simulation import RandomStreams, run_sharded
from ..tracing import TraceSet
from .mapreduce import JobResult
from .run import run_gfs_workload, run_mapreduce_jobs, run_webapp_workload

__all__ = [
    "FleetResult",
    "FleetSpec",
    "ReplicaResult",
    "collect_fleet",
    "replica_streams",
    "run_replica",
]

#: Workloads the fleet can drive, with their default arrival rates.
_APPS = {"gfs": 25.0, "webapp": 120.0, "mapreduce": None}


def replica_streams(seed: int, index: int) -> RandomStreams:
    """The stream factory for replica ``index`` of a fleet seeded ``seed``.

    Pure function of ``(seed, index)`` — workers reconstruct it locally,
    so no generator state crosses process boundaries.
    """
    return RandomStreams(seed).spawn("replica").spawn(str(index))


@dataclass(frozen=True)
class FleetSpec:
    """What to run: which app, how many replicas, how big each one is."""

    app: str = "gfs"
    replicas: int = 1
    seed: int = 0
    n_requests: int = 2000
    arrival_rate: Optional[float] = None  # None = app default
    sample_every: int = 1

    def __post_init__(self) -> None:
        if self.app not in _APPS:
            raise ValueError(
                f"unknown app {self.app!r}; expected one of {sorted(_APPS)}"
            )
        if self.replicas < 1:
            raise ValueError(f"need >= 1 replica, got {self.replicas}")
        if self.n_requests < 1:
            raise ValueError(f"need >= 1 request, got {self.n_requests}")

    def replica(self, index: int) -> "ReplicaSpec":
        rate = self.arrival_rate
        if rate is None:
            rate = _APPS[self.app]
        return ReplicaSpec(
            app=self.app,
            index=index,
            seed=self.seed,
            n_requests=self.n_requests,
            arrival_rate=rate,
            sample_every=self.sample_every,
        )


@dataclass(frozen=True)
class ReplicaSpec:
    """One replica's share of a fleet run (picklable; sent to workers)."""

    app: str
    index: int
    seed: int
    n_requests: int
    arrival_rate: Optional[float]
    sample_every: int = 1


@dataclass
class ReplicaResult:
    """What one replica produced (picklable; returned from workers)."""

    index: int
    traces: TraceSet
    duration: float
    job_results: list[JobResult] = field(default_factory=list)


@dataclass
class FleetResult:
    """The merged outcome of a fleet collection run."""

    traces: TraceSet
    spec: FleetSpec
    workers: int
    replica_durations: list[float]
    elapsed_seconds: float
    job_results: list[JobResult] = field(default_factory=list)

    @property
    def total_simulated_time(self) -> float:
        return sum(self.replica_durations)


def _extent(traces: TraceSet, duration: float) -> float:
    """The time span a replica occupies on the merged timeline."""
    stamps = [duration]
    for stream in (traces.network, traces.cpu, traces.memory, traces.storage):
        stamps.extend(r.timestamp for r in stream)
    stamps.extend(r.completion_time for r in traces.requests)
    stamps.extend(s.start for s in traces.spans)  # .end may be NaN
    return max(stamps)


def _max_request_id(traces: TraceSet) -> int:
    ids = [0]
    for stream in (traces.network, traces.cpu, traces.memory, traces.storage):
        ids.extend(r.request_id for r in stream)
    ids.extend(r.request_id for r in traces.requests)
    ids.extend(s.trace_id for s in traces.spans)
    return max(ids)


def run_replica(spec: ReplicaSpec) -> ReplicaResult:
    """Execute one replica; the worker-process entry point.

    All randomness comes from :func:`replica_streams`, so the result is
    a pure function of the spec.
    """
    streams = replica_streams(spec.seed, spec.index)
    if spec.app == "gfs":
        run = run_gfs_workload(
            n_requests=spec.n_requests,
            arrival_rate=spec.arrival_rate,
            sample_every=spec.sample_every,
            streams=streams,
        )
        return ReplicaResult(spec.index, run.traces, run.env.now)
    if spec.app == "webapp":
        traces = run_webapp_workload(
            n_requests=spec.n_requests,
            arrival_rate=spec.arrival_rate,
            sample_every=spec.sample_every,
            streams=streams,
        )
        return ReplicaResult(spec.index, traces, _extent(traces, 0.0))
    traces, results = run_mapreduce_jobs(
        sample_every=spec.sample_every, streams=streams
    )
    return ReplicaResult(spec.index, traces, _extent(traces, 0.0), list(results))


def merge_replicas(results: list[ReplicaResult]) -> TraceSet:
    """Merge replica traces onto one timeline with unique identifiers.

    Replicas are laid out end-to-end in index order: replica ``k`` is
    shifted by the total extent of all earlier replicas (monotonic time
    offsets) and its request/span ids are shifted past the largest ids
    already merged.
    """
    merged = TraceSet()
    time_offset = 0.0
    request_id_offset = 0
    span_id_offset = 0
    for result in sorted(results, key=lambda r: r.index):
        shifted = result.traces.shifted(
            time_offset=time_offset,
            request_id_offset=request_id_offset,
            span_id_offset=span_id_offset,
        )
        merged = merged.merge(shifted)
        time_offset += _extent(result.traces, result.duration)
        request_id_offset += _max_request_id(result.traces)
        span_id_offset += max([0] + [s.span_id for s in result.traces.spans])
    return merged


def collect_fleet(
    spec: Optional[FleetSpec] = None,
    workers: int = 1,
    **spec_kwargs,
) -> FleetResult:
    """Run a fleet of replicas and merge their traces.

    Either pass a prebuilt :class:`FleetSpec` or its fields as keyword
    arguments (``collect_fleet(app="gfs", replicas=8, workers=4)``).
    ``workers <= 0`` uses every available core.  The merged traces are
    bit-identical for any worker count.
    """
    if spec is None:
        spec = FleetSpec(**spec_kwargs)
    elif spec_kwargs:
        raise TypeError("pass either a FleetSpec or keyword fields, not both")
    replica_specs = [spec.replica(k) for k in range(spec.replicas)]
    start = time.perf_counter()
    results = run_sharded(run_replica, replica_specs, workers)
    elapsed = time.perf_counter() - start
    merged = merge_replicas(results)
    job_results = [jr for r in results for jr in r.job_results]
    return FleetResult(
        traces=merged,
        spec=spec,
        workers=workers,
        replica_durations=[r.duration for r in results],
        elapsed_seconds=elapsed,
        job_results=job_results,
    )
