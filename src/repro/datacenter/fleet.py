"""Fleet driver: N independent workload replicas, sharded across processes.

The paper's KOOZA validation trains on traces from many independent
workload runs; collecting them one-at-a-time in a single process wastes
every core but one.  This driver fans ``replicas`` independent copies of
one of the three standard workloads (:func:`run_gfs_workload`,
:func:`run_webapp_workload`, :func:`run_mapreduce_jobs`) across worker
processes and merges their traces into a single :class:`TraceSet`.

Two properties make the merged result well-defined:

* **Deterministic sharding** — replica ``k`` seeds every stochastic
  component from the stream path ``("replica", str(k))`` under the
  fleet seed, so its traces are bit-identical no matter which worker
  process runs it or how many workers exist.  (This is exactly the
  disjointness contract the fixed :class:`RandomStreams` segment
  encoding provides; the old per-character keys could alias replica
  substreams onto workload-internal ones.)
* **Monotonic merge** — each replica's clock starts at zero, so replica
  ``k``'s records are shifted by the summed extent of replicas
  ``0..k-1`` before merging, and its request/span identifiers are
  shifted past its predecessors'.  Merged timestamps are then globally
  ordered by replica, and identifiers remain unique, so downstream
  consumers (model trainers, characterization) see one coherent trace.
"""

from __future__ import annotations

import itertools
import shutil
import time
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Any, Callable, Mapping, Optional, Sequence

from ..simulation import run_sharded
from ..snapshot import check_state, load_snapshot, make_state, save_snapshot
from ..store.manifest import ShardManifest, write_round_file
from ..store.stitch import (
    accumulate_offsets,
    max_request_id,
    max_span_id,
    trace_extent,
)
from ..store.writer import ShardWriter, shard_dirname
from ..tracing import Tracer, TraceSet
from .mapreduce import JobResult
from .run import run_gfs_workload, run_mapreduce_jobs, run_webapp_workload
from .session import ReplicaSession, _NullSink, replica_streams

__all__ = [
    "CHECKPOINT_DIRNAME",
    "FleetResult",
    "FleetSpec",
    "ReplicaResult",
    "ShardTask",
    "StoreFleetResult",
    "WindowedTask",
    "checkpoint_filename",
    "collect_fleet",
    "collect_fleet_to_store",
    "collect_replicas",
    "load_fleet_plan",
    "merge_replicas",
    "replica_params",
    "save_fleet_plan",
    "replica_streams",
    "resume_fleet_collection",
    "run_replica",
    "sweep_grid",
    "sweep_replica_specs",
    "write_replica_shard",
    "write_windowed_replica",
]

#: Workloads the fleet can drive, with their default arrival rates.
_APPS = {"gfs": 25.0, "webapp": 120.0, "mapreduce": None}


@dataclass(frozen=True)
class FleetSpec:
    """What to run: which app, how many replicas, how big each one is."""

    app: str = "gfs"
    replicas: int = 1
    seed: int = 0
    n_requests: int = 2000
    arrival_rate: Optional[float] = None  # None = app default
    sample_every: int = 1

    def __post_init__(self) -> None:
        if self.app not in _APPS:
            raise ValueError(
                f"unknown app {self.app!r}; expected one of {sorted(_APPS)}"
            )
        if self.replicas < 1:
            raise ValueError(f"need >= 1 replica, got {self.replicas}")
        if self.n_requests < 1:
            raise ValueError(f"need >= 1 request, got {self.n_requests}")

    def replica(self, index: int) -> "ReplicaSpec":
        rate = self.arrival_rate
        if rate is None:
            rate = _APPS[self.app]
        return ReplicaSpec(
            app=self.app,
            index=index,
            seed=self.seed,
            n_requests=self.n_requests,
            arrival_rate=rate,
            sample_every=self.sample_every,
        )

    def at_rate(self, arrival_rate: float) -> "FleetSpec":
        """The same fleet at a different operating point.

        Used by ``repro plan`` cross-validation to launch targeted
        simulations at scaled arrival rates.  Rate-less apps
        (mapreduce) cannot be rescaled this way.
        """
        if _APPS[self.app] is None:
            raise ValueError(
                f"app {self.app!r} has no arrival rate to scale"
            )
        if arrival_rate <= 0:
            raise ValueError(
                f"arrival rate must be > 0, got {arrival_rate}"
            )
        return replace(self, arrival_rate=arrival_rate)


@dataclass(frozen=True)
class ReplicaSpec:
    """One replica's share of a fleet run (picklable; sent to workers)."""

    app: str
    index: int
    seed: int
    n_requests: int
    arrival_rate: Optional[float]
    sample_every: int = 1


@dataclass
class ReplicaResult:
    """What one replica produced (picklable; returned from workers)."""

    index: int
    traces: TraceSet
    duration: float
    job_results: list[JobResult] = field(default_factory=list)


@dataclass
class FleetResult:
    """The merged outcome of a fleet collection run."""

    traces: TraceSet
    spec: FleetSpec
    workers: int
    replica_durations: list[float]
    elapsed_seconds: float
    job_results: list[JobResult] = field(default_factory=list)

    @property
    def total_simulated_time(self) -> float:
        return sum(self.replica_durations)


def run_replica(spec: ReplicaSpec) -> ReplicaResult:
    """Execute one replica; the worker-process entry point.

    All randomness comes from :func:`replica_streams`, so the result is
    a pure function of the spec.
    """
    streams = replica_streams(spec.seed, spec.index)
    if spec.app == "gfs":
        run = run_gfs_workload(
            n_requests=spec.n_requests,
            arrival_rate=spec.arrival_rate,
            sample_every=spec.sample_every,
            streams=streams,
        )
        return ReplicaResult(spec.index, run.traces, run.env.now)
    if spec.app == "webapp":
        traces = run_webapp_workload(
            n_requests=spec.n_requests,
            arrival_rate=spec.arrival_rate,
            sample_every=spec.sample_every,
            streams=streams,
        )
        return ReplicaResult(spec.index, traces, trace_extent(traces))
    traces, results = run_mapreduce_jobs(
        sample_every=spec.sample_every, streams=streams
    )
    return ReplicaResult(spec.index, traces, trace_extent(traces), list(results))


def merge_replicas(results: list[ReplicaResult]) -> TraceSet:
    """Merge replica traces onto one timeline with unique identifiers.

    Replicas are laid out end-to-end in index order: replica ``k`` is
    shifted by the total extent of all earlier replicas (monotonic time
    offsets) and its request/span ids are shifted past the largest ids
    already merged.  The offset arithmetic lives in
    :mod:`repro.store.stitch` and is shared with the on-disk
    :class:`~repro.store.ShardStore`, which must reproduce this merge
    byte for byte from manifests alone.  An empty replica advances the
    timeline by its simulated duration but consumes no identifier
    space.
    """
    ordered = sorted(results, key=lambda r: r.index)
    parts = [
        (
            trace_extent(r.traces, r.duration),
            max_request_id(r.traces),
            max_span_id(r.traces),
        )
        for r in ordered
    ]
    merged = TraceSet()
    for result, offsets in zip(ordered, accumulate_offsets(parts)):
        merged = merged.merge(
            result.traces.shifted(
                time_offset=offsets.time,
                request_id_offset=offsets.request_id,
                span_id_offset=offsets.span_id,
            )
        )
    return merged


def collect_fleet(
    spec: Optional[FleetSpec] = None,
    workers: int = 1,
    **spec_kwargs,
) -> FleetResult:
    """Run a fleet of replicas and merge their traces.

    Either pass a prebuilt :class:`FleetSpec` or its fields as keyword
    arguments (``collect_fleet(app="gfs", replicas=8, workers=4)``).
    ``workers <= 0`` uses every available core.  The merged traces are
    bit-identical for any worker count.
    """
    if spec is None:
        spec = FleetSpec(**spec_kwargs)
    elif spec_kwargs:
        raise TypeError("pass either a FleetSpec or keyword fields, not both")
    replica_specs = [spec.replica(k) for k in range(spec.replicas)]
    start = time.perf_counter()
    results = run_sharded(run_replica, replica_specs, workers)
    elapsed = time.perf_counter() - start
    merged = merge_replicas(results)
    job_results = [jr for r in results for jr in r.job_results]
    return FleetResult(
        traces=merged,
        spec=spec,
        workers=workers,
        replica_durations=[r.duration for r in results],
        elapsed_seconds=elapsed,
        job_results=job_results,
    )


def collect_replicas(
    replica_specs: Sequence[ReplicaSpec], workers: int = 1
) -> list[ReplicaResult]:
    """Run an explicit replica list (e.g. a sweep) and keep traces in memory.

    The in-memory counterpart of :func:`collect_fleet_to_store` for the
    same spec list; ``merge_replicas`` of the result is the reference
    the on-disk stitch is validated against.
    """
    return run_sharded(run_replica, list(replica_specs), workers)


# -- parameter sweeps --------------------------------------------------------

#: Replica fields a sweep grid may vary.
_SWEEPABLE = ("app", "arrival_rate", "n_requests", "sample_every")


def sweep_grid(**axes: Sequence[Any]) -> list[dict[str, Any]]:
    """Cross product of parameter axes, e.g. ``sweep_grid(arrival_rate=[10, 25], n_requests=[500])``.

    Axis order follows keyword order with the rightmost axis varying
    fastest; each grid point is a dict of overrides for
    :func:`sweep_replica_specs`.
    """
    for key in axes:
        if key not in _SWEEPABLE:
            raise ValueError(
                f"cannot sweep {key!r}; sweepable: {sorted(_SWEEPABLE)}"
            )
    keys = list(axes)
    return [
        dict(zip(keys, values))
        for values in itertools.product(*(axes[k] for k in keys))
    ]


def sweep_replica_specs(
    base: FleetSpec,
    grid: Sequence[Mapping[str, Any]],
    repeats: Optional[int] = None,
) -> list[ReplicaSpec]:
    """Derive one replica per (grid point × repeat) from a base spec.

    ``repeats`` defaults to ``base.replicas``, so a fleet of R replicas
    swept over G grid points yields ``G*R`` replicas — R repetitions
    (distinct random substreams) at each parameter point.  Replica
    indices enumerate the list, which keeps every replica's stream path
    globally disjoint; the varied parameters are recorded per shard in
    its manifest, so downstream analysis groups by them via
    :meth:`repro.store.ShardStore.group_by`.
    """
    if repeats is None:
        repeats = base.replicas
    if repeats < 1:
        raise ValueError(f"need >= 1 repeat per grid point, got {repeats}")
    if not grid:
        raise ValueError("empty sweep grid")
    specs: list[ReplicaSpec] = []
    for point in grid:
        unknown = set(point) - set(_SWEEPABLE)
        if unknown:
            raise ValueError(
                f"cannot sweep {sorted(unknown)}; sweepable: {sorted(_SWEEPABLE)}"
            )
        app = point.get("app", base.app)
        if app not in _APPS:
            raise ValueError(
                f"unknown app {app!r}; expected one of {sorted(_APPS)}"
            )
        rate = point.get("arrival_rate", base.arrival_rate)
        if rate is None:
            rate = _APPS[app]
        for _ in range(repeats):
            index = len(specs)
            specs.append(
                replace(
                    base.replica(index),
                    app=app,
                    arrival_rate=rate,
                    n_requests=point.get("n_requests", base.n_requests),
                    sample_every=point.get("sample_every", base.sample_every),
                )
            )
    return specs


# -- streaming collection into an on-disk shard store ------------------------


def replica_params(spec: ReplicaSpec) -> dict[str, Any]:
    """The spec parameters a shard manifest records for grouping."""
    return {
        "n_requests": spec.n_requests,
        "arrival_rate": spec.arrival_rate,
        "sample_every": spec.sample_every,
    }


@dataclass(frozen=True)
class ShardTask:
    """One worker's assignment: run a replica, stream it to a shard dir."""

    replica: ReplicaSpec
    directory: str
    compress: bool = False
    round: int = 0
    #: Stream layout the shard is written in (``"jsonl"``/``"columnar"``).
    codec: str = "jsonl"


def write_replica_shard(task: ShardTask) -> ShardManifest:
    """Worker entry point: simulate one replica straight onto disk.

    The tracer streams every record into a :class:`ShardWriter` the
    moment it is collected (``keep_records=False`` — only the sampled
    spans are held until the end), so the worker's memory stays bounded
    and the only thing pickled back through the pool is the manifest.
    """
    spec = task.replica
    writer = ShardWriter(
        Path(task.directory) / shard_dirname(spec.index),
        index=spec.index,
        app=spec.app,
        seed=spec.seed,
        params=replica_params(spec),
        compress=task.compress,
        round=task.round,
        codec=task.codec,
    )
    streams = replica_streams(spec.seed, spec.index)
    tracer = Tracer(
        sample_every=spec.sample_every, sink=writer, keep_records=False
    )
    if spec.app == "gfs":
        run = run_gfs_workload(
            n_requests=spec.n_requests,
            arrival_rate=spec.arrival_rate,
            streams=streams,
            tracer=tracer,
        )
        duration = run.env.now
    elif spec.app == "webapp":
        run_webapp_workload(
            n_requests=spec.n_requests,
            arrival_rate=spec.arrival_rate,
            streams=streams,
            tracer=tracer,
        )
        duration = writer.extent
    else:
        run_mapreduce_jobs(streams=streams, tracer=tracer)
        duration = writer.extent
    tracer.close()
    return writer.finalize(duration)


@dataclass
class StoreFleetResult:
    """The outcome of a fleet collection that persisted shards to disk."""

    directory: Path
    manifests: list[ShardManifest]
    workers: int
    elapsed_seconds: float
    #: Collection round these manifests belong to (0 = initial collect).
    round: int = 0

    @property
    def n_records(self) -> int:
        return sum(m.n_records for m in self.manifests)

    @property
    def total_simulated_time(self) -> float:
        return sum(m.duration for m in self.manifests)

    def store(self):
        """Open the collected shards as a :class:`~repro.store.ShardStore`.

        The returned store is a lazy :class:`~repro.tracing.TraceSource`
        — hand it straight to ``characterize_source`` /
        ``train_per_class`` / ``compare_workloads`` without merging.
        """
        from ..store import ShardStore

        return ShardStore(self.directory)


def collect_fleet_to_store(
    spec: Optional[FleetSpec] = None,
    directory: str | Path = "traces",
    workers: int = 1,
    compress: bool = False,
    replica_specs: Optional[Sequence[ReplicaSpec]] = None,
    on_shard: Optional[Callable[[int, ShardManifest], None]] = None,
    append: bool = False,
    codec: str = "jsonl",
    windows: int = 1,
    checkpoint_dir: Optional[str | Path] = None,
    **spec_kwargs,
) -> StoreFleetResult:
    """Run a fleet (or explicit sweep list) streaming shards to ``directory``.

    Unlike :func:`collect_fleet`, no trace records cross the process
    pool: each replica writes ``directory/shard-<idx>/`` as it runs and
    only per-shard manifests come back.  ``on_shard(index, manifest)``
    fires as each shard lands on disk.  Stitch the store back into one
    trace timeline with :class:`repro.store.ShardStore` (or
    ``repro merge``); the result is byte-identical to
    ``merge_replicas(collect_replicas(...))`` for any worker count.

    ``append=True`` adds a new collection **round** to an existing
    store: replica indices continue past the largest shard index
    already on disk, so — replica streams being pure functions of
    ``(seed, index)`` — collecting N replicas and appending M more with
    the same seed produces byte-identical stream files to collecting
    N+M in one go.  Each round records which shards it produced in a
    ``round-<n>.json`` file at the store root (folded into one
    ``index.json`` by :func:`repro.store.compact_store`).

    ``codec`` selects the per-shard stream layout (``"jsonl"`` line
    files or the binary ``"columnar"`` struct-of-arrays layout); the
    simulated records are identical either way, only the on-disk
    encoding differs, and a store may mix codecs across rounds.

    ``windows=N`` (or an explicit ``checkpoint_dir``) switches to
    **windowed collection**: each replica is split into N shards —
    shard ``r*N + w`` holds replica ``r``'s window ``w``, every window
    after the first marked ``continues`` — and the replica's engine is
    checkpointed into ``checkpoint_dir`` (default
    ``<directory>/_checkpoints``) at every window boundary.  A worker
    killed mid-window is resumed from its last boundary by
    :func:`resume_fleet_collection` (``repro resume``); the finished
    store merges byte-identically to a single-shot collect of the same
    spec.  Each window lands as its own collection round, so
    complete-rounds visibility gating exposes a consistent
    all-replicas-through-window-``w`` prefix while later windows are
    still running.
    """
    if replica_specs is None:
        if spec is None:
            spec = FleetSpec(**spec_kwargs)
        elif spec_kwargs:
            raise TypeError(
                "pass either a FleetSpec or keyword fields, not both"
            )
        replica_specs = [spec.replica(k) for k in range(spec.replicas)]
    elif spec is not None or spec_kwargs:
        raise TypeError("pass either replica_specs or a spec, not both")
    if windows < 1:
        raise ValueError(f"need >= 1 window, got {windows}")
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    existing = sorted(directory.glob("shard-*/manifest.json"))
    round_index = 0
    start_shard = 0
    start_replica = 0
    if append:
        if not existing:
            raise FileNotFoundError(
                f"append=True but {directory} holds no shard store "
                "(collect without append first)"
            )
        manifests_on_disk = [ShardManifest.load(p) for p in existing]
        start_shard = max(m.index for m in manifests_on_disk) + 1
        round_index = max(m.round for m in manifests_on_disk) + 1
        # Replica indices (the seeding identity) continue from the number
        # of replicas already collected — one per non-continuation shard —
        # not from the shard count, which windowed rounds inflate.
        start_replica = sum(1 for m in manifests_on_disk if not m.continues)
    elif existing:
        raise FileExistsError(
            f"{directory} already holds a shard store; pass append=True "
            "to add a collection round (or choose a fresh directory)"
        )
    if windows > 1 or checkpoint_dir is not None:
        if checkpoint_dir is None:
            checkpoint_dir = directory / CHECKPOINT_DIRNAME
        replica_specs = [
            replace(r, index=r.index + start_replica) for r in replica_specs
        ]
        tasks = [
            WindowedTask(
                replica=r,
                directory=str(directory),
                checkpoint_dir=str(checkpoint_dir),
                n_windows=windows,
                shard_base=start_shard + i * windows,
                round_base=round_index,
                compress=compress,
                codec=codec,
            )
            for i, r in enumerate(replica_specs)
        ]
        save_fleet_plan(checkpoint_dir, directory, tasks)
        return _run_windowed_tasks(directory, tasks, workers, on_shard)
    replica_specs = [
        replace(r, index=r.index + start_shard) for r in replica_specs
    ]
    tasks = [
        ShardTask(
            replica=r,
            directory=str(directory),
            compress=compress,
            round=round_index,
            codec=codec,
        )
        for r in replica_specs
    ]
    start = time.perf_counter()
    manifests = run_sharded(
        write_replica_shard, tasks, workers, on_result=on_shard
    )
    elapsed = time.perf_counter() - start
    write_round_file(directory, round_index, [m.index for m in manifests])
    return StoreFleetResult(
        directory=directory,
        manifests=manifests,
        workers=workers,
        elapsed_seconds=elapsed,
        round=round_index,
    )


# -- windowed collection with engine checkpoints ------------------------------

#: Where a windowed collection keeps its checkpoints, inside the store.
CHECKPOINT_DIRNAME = "_checkpoints"

FLEET_PLAN_KIND = "fleet-plan"
FLEET_PLAN_FILENAME = "fleet.json"


def checkpoint_filename(replica_index: int) -> str:
    """Name of one replica's engine-checkpoint file."""
    return f"replica-{replica_index:05d}.json"


@dataclass(frozen=True)
class WindowedTask:
    """One worker's assignment: a replica split across N window shards.

    Windows ``0..n_windows-1`` land in shards ``shard_base + w`` (the
    coordinator allocates replica-major bases: replica ``r`` owns
    ``start + r*N .. start + r*N + N-1``) and rounds ``round_base + w``.
    The worker checkpoints its engine into ``checkpoint_dir`` after each
    window, so it resumes from the last completed boundary after a kill.
    """

    replica: ReplicaSpec
    directory: str
    checkpoint_dir: str
    n_windows: int
    shard_base: int
    round_base: int = 0
    compress: bool = False
    codec: str = "jsonl"


def _window_params(spec: ReplicaSpec, window: int, n_windows: int) -> dict:
    params = replica_params(spec)
    params["replica"] = spec.index
    params["window"] = window
    params["windows"] = n_windows
    return params


def write_windowed_replica(task: WindowedTask) -> list[ShardManifest]:
    """Worker entry point: one replica streamed into N window shards.

    Between windows the session's engine is checkpointed (replay recipe
    + digests, see :meth:`ReplicaSession.checkpoint`) to
    ``checkpoint_dir/replica-<idx>.json``.  Called again after a crash
    — directly or via :func:`resume_fleet_collection` — the worker
    loads that checkpoint, deletes any torn shard directory the kill
    left behind (a shard dir without its manifest, or one the stale
    checkpoint predates), restores the session by deterministic replay,
    and continues; determinism makes the rewritten shards byte-identical
    to the uninterrupted run's.
    """
    spec = task.replica
    n_windows = task.n_windows
    directory = Path(task.directory)
    ckpt_path = Path(task.checkpoint_dir) / checkpoint_filename(spec.index)
    manifests: list[ShardManifest] = []
    boundaries: list[float] = []
    windows_done = 0
    session: Optional[ReplicaSession] = None
    if ckpt_path.exists():
        state = load_snapshot(ckpt_path)
        worker_meta = state.get("worker", {})
        windows_done = int(worker_meta.get("windows_done", 0))
        boundaries = [float(b) for b in worker_meta.get("boundaries", [])]
        for w in range(windows_done):
            manifests.append(
                ShardManifest.load(directory / shard_dirname(task.shard_base + w))
            )
        if windows_done < n_windows:
            session = ReplicaSession.restore(state, keep_records=False)
    if session is None and windows_done < n_windows:
        session = ReplicaSession(
            spec,
            tracer=Tracer(
                sample_every=spec.sample_every,
                sink=_NullSink(),
                keep_records=False,
            ),
        )
        session.tracer.sink = None
    for w in range(windows_done, n_windows):
        shard_index = task.shard_base + w
        shard_dir = directory / shard_dirname(shard_index)
        if shard_dir.exists():  # torn shard from a killed worker
            shutil.rmtree(shard_dir)
        writer = ShardWriter(
            shard_dir,
            index=shard_index,
            app=spec.app,
            seed=spec.seed,
            params=_window_params(spec, w, n_windows),
            compress=task.compress,
            round=task.round_base + w,
            codec=task.codec,
            continues=w > 0,
        )
        session.tracer.sink = writer
        final = w == n_windows - 1
        if final:
            session.run_to_completion()
        else:
            session.advance_progress(session.window_target(w, n_windows))
        session.tracer.flush_spans(final=final)
        session.tracer.sink = None
        previous = boundaries[-1] if boundaries else 0.0
        # The absolute end of this window: gfs replicas report simulated
        # time, webapp/mapreduce the streamed-record extent (exactly the
        # duration semantics of the single-shot write_replica_shard).
        if spec.app == "gfs":
            boundary = session.env.now
        else:
            boundary = max(previous, writer.extent)
        boundaries.append(boundary)
        # Duration stays the per-window delta (so durations sum to the
        # replica's) while the extent floor is the absolute boundary
        # (window records carry absolute timestamps).
        manifests.append(
            writer.finalize(boundary - previous, extent_floor=boundary)
        )
        state = session.checkpoint()
        state["worker"] = {
            "windows_done": w + 1,
            "n_windows": n_windows,
            "shard_base": task.shard_base,
            "boundaries": boundaries,
        }
        save_snapshot(state, ckpt_path)
    return manifests


def save_fleet_plan(
    checkpoint_dir: str | Path, directory: str | Path, tasks: Sequence[WindowedTask]
) -> Path:
    """Persist a windowed collection's plan so ``repro resume`` can rebuild it."""
    state = make_state(
        FLEET_PLAN_KIND,
        {
            "directory": str(directory),
            "n_windows": tasks[0].n_windows if tasks else 1,
            "round_base": tasks[0].round_base if tasks else 0,
            "compress": bool(tasks[0].compress) if tasks else False,
            "codec": tasks[0].codec if tasks else "jsonl",
            "tasks": [
                {
                    "spec": {
                        "app": t.replica.app,
                        "index": t.replica.index,
                        "seed": t.replica.seed,
                        "n_requests": t.replica.n_requests,
                        "arrival_rate": t.replica.arrival_rate,
                        "sample_every": t.replica.sample_every,
                    },
                    "shard_base": t.shard_base,
                }
                for t in tasks
            ],
        },
    )
    return save_snapshot(state, Path(checkpoint_dir) / FLEET_PLAN_FILENAME)


def load_fleet_plan(
    checkpoint_dir: str | Path,
) -> tuple[Path, list[WindowedTask]]:
    """Rebuild the store directory + task list from a saved fleet plan."""
    plan_path = Path(checkpoint_dir) / FLEET_PLAN_FILENAME
    if not plan_path.exists():
        raise FileNotFoundError(
            f"no fleet plan at {plan_path} "
            "(was this store collected with --windows/--checkpoint-dir?)"
        )
    state = load_snapshot(plan_path)
    check_state(state, FLEET_PLAN_KIND)
    directory = Path(state["directory"])
    tasks = [
        WindowedTask(
            replica=ReplicaSpec(**entry["spec"]),
            directory=str(directory),
            checkpoint_dir=str(Path(checkpoint_dir)),
            n_windows=int(state["n_windows"]),
            shard_base=int(entry["shard_base"]),
            round_base=int(state["round_base"]),
            compress=bool(state["compress"]),
            codec=str(state["codec"]),
        )
        for entry in state["tasks"]
    ]
    return directory, tasks


def _run_windowed_tasks(
    directory: Path,
    tasks: list[WindowedTask],
    workers: int,
    on_shard: Optional[Callable[[int, ShardManifest], None]] = None,
) -> StoreFleetResult:
    on_result = None
    if on_shard is not None:

        def on_result(_index: int, shard_manifests: list[ShardManifest]) -> None:
            for manifest in shard_manifests:
                on_shard(manifest.index, manifest)

    start = time.perf_counter()
    manifest_lists = run_sharded(
        write_windowed_replica, tasks, workers, on_result=on_result
    )
    elapsed = time.perf_counter() - start
    n_windows = tasks[0].n_windows if tasks else 1
    round_base = tasks[0].round_base if tasks else 0
    for w in range(n_windows):
        write_round_file(
            directory, round_base + w, [t.shard_base + w for t in tasks]
        )
    return StoreFleetResult(
        directory=directory,
        manifests=[m for ms in manifest_lists for m in ms],
        workers=workers,
        elapsed_seconds=elapsed,
        round=round_base,
    )


def resume_fleet_collection(
    directory: str | Path,
    checkpoint_dir: Optional[str | Path] = None,
    workers: int = 1,
    on_shard: Optional[Callable[[int, ShardManifest], None]] = None,
) -> StoreFleetResult:
    """Finish an interrupted windowed collection (``repro resume``).

    Reads the fleet plan persisted in ``checkpoint_dir`` (default
    ``<directory>/_checkpoints``), re-dispatches every replica, and lets
    each worker fast-forward: completed windows return their manifests
    straight from disk, a replica killed mid-window restores its engine
    from the last boundary checkpoint and re-simulates forward.  The
    finished store is byte-identical to one whose collection was never
    interrupted.  Idempotent — resuming a complete store re-reads
    manifests and rewrites round files without re-simulating.
    """
    directory = Path(directory)
    if checkpoint_dir is None:
        checkpoint_dir = directory / CHECKPOINT_DIRNAME
    plan_directory, tasks = load_fleet_plan(checkpoint_dir)
    if plan_directory.resolve() != directory.resolve():
        # The store moved since the plan was written; trust the caller's
        # location and point the tasks at it.
        tasks = [replace(t, directory=str(directory)) for t in tasks]
    return _run_windowed_tasks(directory, tasks, workers, on_shard)
