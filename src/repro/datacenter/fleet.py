"""Fleet driver: N independent workload replicas, sharded across processes.

The paper's KOOZA validation trains on traces from many independent
workload runs; collecting them one-at-a-time in a single process wastes
every core but one.  This driver fans ``replicas`` independent copies of
one of the three standard workloads (:func:`run_gfs_workload`,
:func:`run_webapp_workload`, :func:`run_mapreduce_jobs`) across worker
processes and merges their traces into a single :class:`TraceSet`.

Two properties make the merged result well-defined:

* **Deterministic sharding** — replica ``k`` seeds every stochastic
  component from the stream path ``("replica", str(k))`` under the
  fleet seed, so its traces are bit-identical no matter which worker
  process runs it or how many workers exist.  (This is exactly the
  disjointness contract the fixed :class:`RandomStreams` segment
  encoding provides; the old per-character keys could alias replica
  substreams onto workload-internal ones.)
* **Monotonic merge** — each replica's clock starts at zero, so replica
  ``k``'s records are shifted by the summed extent of replicas
  ``0..k-1`` before merging, and its request/span identifiers are
  shifted past its predecessors'.  Merged timestamps are then globally
  ordered by replica, and identifiers remain unique, so downstream
  consumers (model trainers, characterization) see one coherent trace.
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Any, Callable, Mapping, Optional, Sequence

from ..simulation import RandomStreams, run_sharded
from ..store.manifest import ShardManifest, write_round_file
from ..store.stitch import (
    accumulate_offsets,
    max_request_id,
    max_span_id,
    trace_extent,
)
from ..store.writer import ShardWriter, shard_dirname
from ..tracing import Tracer, TraceSet
from .mapreduce import JobResult
from .run import run_gfs_workload, run_mapreduce_jobs, run_webapp_workload

__all__ = [
    "FleetResult",
    "FleetSpec",
    "ReplicaResult",
    "ShardTask",
    "StoreFleetResult",
    "collect_fleet",
    "collect_fleet_to_store",
    "collect_replicas",
    "merge_replicas",
    "replica_params",
    "replica_streams",
    "run_replica",
    "sweep_grid",
    "sweep_replica_specs",
    "write_replica_shard",
]

#: Workloads the fleet can drive, with their default arrival rates.
_APPS = {"gfs": 25.0, "webapp": 120.0, "mapreduce": None}


def replica_streams(seed: int, index: int) -> RandomStreams:
    """The stream factory for replica ``index`` of a fleet seeded ``seed``.

    Pure function of ``(seed, index)`` — workers reconstruct it locally,
    so no generator state crosses process boundaries.
    """
    return RandomStreams(seed).spawn("replica").spawn(str(index))


@dataclass(frozen=True)
class FleetSpec:
    """What to run: which app, how many replicas, how big each one is."""

    app: str = "gfs"
    replicas: int = 1
    seed: int = 0
    n_requests: int = 2000
    arrival_rate: Optional[float] = None  # None = app default
    sample_every: int = 1

    def __post_init__(self) -> None:
        if self.app not in _APPS:
            raise ValueError(
                f"unknown app {self.app!r}; expected one of {sorted(_APPS)}"
            )
        if self.replicas < 1:
            raise ValueError(f"need >= 1 replica, got {self.replicas}")
        if self.n_requests < 1:
            raise ValueError(f"need >= 1 request, got {self.n_requests}")

    def replica(self, index: int) -> "ReplicaSpec":
        rate = self.arrival_rate
        if rate is None:
            rate = _APPS[self.app]
        return ReplicaSpec(
            app=self.app,
            index=index,
            seed=self.seed,
            n_requests=self.n_requests,
            arrival_rate=rate,
            sample_every=self.sample_every,
        )

    def at_rate(self, arrival_rate: float) -> "FleetSpec":
        """The same fleet at a different operating point.

        Used by ``repro plan`` cross-validation to launch targeted
        simulations at scaled arrival rates.  Rate-less apps
        (mapreduce) cannot be rescaled this way.
        """
        if _APPS[self.app] is None:
            raise ValueError(
                f"app {self.app!r} has no arrival rate to scale"
            )
        if arrival_rate <= 0:
            raise ValueError(
                f"arrival rate must be > 0, got {arrival_rate}"
            )
        return replace(self, arrival_rate=arrival_rate)


@dataclass(frozen=True)
class ReplicaSpec:
    """One replica's share of a fleet run (picklable; sent to workers)."""

    app: str
    index: int
    seed: int
    n_requests: int
    arrival_rate: Optional[float]
    sample_every: int = 1


@dataclass
class ReplicaResult:
    """What one replica produced (picklable; returned from workers)."""

    index: int
    traces: TraceSet
    duration: float
    job_results: list[JobResult] = field(default_factory=list)


@dataclass
class FleetResult:
    """The merged outcome of a fleet collection run."""

    traces: TraceSet
    spec: FleetSpec
    workers: int
    replica_durations: list[float]
    elapsed_seconds: float
    job_results: list[JobResult] = field(default_factory=list)

    @property
    def total_simulated_time(self) -> float:
        return sum(self.replica_durations)


def run_replica(spec: ReplicaSpec) -> ReplicaResult:
    """Execute one replica; the worker-process entry point.

    All randomness comes from :func:`replica_streams`, so the result is
    a pure function of the spec.
    """
    streams = replica_streams(spec.seed, spec.index)
    if spec.app == "gfs":
        run = run_gfs_workload(
            n_requests=spec.n_requests,
            arrival_rate=spec.arrival_rate,
            sample_every=spec.sample_every,
            streams=streams,
        )
        return ReplicaResult(spec.index, run.traces, run.env.now)
    if spec.app == "webapp":
        traces = run_webapp_workload(
            n_requests=spec.n_requests,
            arrival_rate=spec.arrival_rate,
            sample_every=spec.sample_every,
            streams=streams,
        )
        return ReplicaResult(spec.index, traces, trace_extent(traces))
    traces, results = run_mapreduce_jobs(
        sample_every=spec.sample_every, streams=streams
    )
    return ReplicaResult(spec.index, traces, trace_extent(traces), list(results))


def merge_replicas(results: list[ReplicaResult]) -> TraceSet:
    """Merge replica traces onto one timeline with unique identifiers.

    Replicas are laid out end-to-end in index order: replica ``k`` is
    shifted by the total extent of all earlier replicas (monotonic time
    offsets) and its request/span ids are shifted past the largest ids
    already merged.  The offset arithmetic lives in
    :mod:`repro.store.stitch` and is shared with the on-disk
    :class:`~repro.store.ShardStore`, which must reproduce this merge
    byte for byte from manifests alone.  An empty replica advances the
    timeline by its simulated duration but consumes no identifier
    space.
    """
    ordered = sorted(results, key=lambda r: r.index)
    parts = [
        (
            trace_extent(r.traces, r.duration),
            max_request_id(r.traces),
            max_span_id(r.traces),
        )
        for r in ordered
    ]
    merged = TraceSet()
    for result, offsets in zip(ordered, accumulate_offsets(parts)):
        merged = merged.merge(
            result.traces.shifted(
                time_offset=offsets.time,
                request_id_offset=offsets.request_id,
                span_id_offset=offsets.span_id,
            )
        )
    return merged


def collect_fleet(
    spec: Optional[FleetSpec] = None,
    workers: int = 1,
    **spec_kwargs,
) -> FleetResult:
    """Run a fleet of replicas and merge their traces.

    Either pass a prebuilt :class:`FleetSpec` or its fields as keyword
    arguments (``collect_fleet(app="gfs", replicas=8, workers=4)``).
    ``workers <= 0`` uses every available core.  The merged traces are
    bit-identical for any worker count.
    """
    if spec is None:
        spec = FleetSpec(**spec_kwargs)
    elif spec_kwargs:
        raise TypeError("pass either a FleetSpec or keyword fields, not both")
    replica_specs = [spec.replica(k) for k in range(spec.replicas)]
    start = time.perf_counter()
    results = run_sharded(run_replica, replica_specs, workers)
    elapsed = time.perf_counter() - start
    merged = merge_replicas(results)
    job_results = [jr for r in results for jr in r.job_results]
    return FleetResult(
        traces=merged,
        spec=spec,
        workers=workers,
        replica_durations=[r.duration for r in results],
        elapsed_seconds=elapsed,
        job_results=job_results,
    )


def collect_replicas(
    replica_specs: Sequence[ReplicaSpec], workers: int = 1
) -> list[ReplicaResult]:
    """Run an explicit replica list (e.g. a sweep) and keep traces in memory.

    The in-memory counterpart of :func:`collect_fleet_to_store` for the
    same spec list; ``merge_replicas`` of the result is the reference
    the on-disk stitch is validated against.
    """
    return run_sharded(run_replica, list(replica_specs), workers)


# -- parameter sweeps --------------------------------------------------------

#: Replica fields a sweep grid may vary.
_SWEEPABLE = ("app", "arrival_rate", "n_requests", "sample_every")


def sweep_grid(**axes: Sequence[Any]) -> list[dict[str, Any]]:
    """Cross product of parameter axes, e.g. ``sweep_grid(arrival_rate=[10, 25], n_requests=[500])``.

    Axis order follows keyword order with the rightmost axis varying
    fastest; each grid point is a dict of overrides for
    :func:`sweep_replica_specs`.
    """
    for key in axes:
        if key not in _SWEEPABLE:
            raise ValueError(
                f"cannot sweep {key!r}; sweepable: {sorted(_SWEEPABLE)}"
            )
    keys = list(axes)
    return [
        dict(zip(keys, values))
        for values in itertools.product(*(axes[k] for k in keys))
    ]


def sweep_replica_specs(
    base: FleetSpec,
    grid: Sequence[Mapping[str, Any]],
    repeats: Optional[int] = None,
) -> list[ReplicaSpec]:
    """Derive one replica per (grid point × repeat) from a base spec.

    ``repeats`` defaults to ``base.replicas``, so a fleet of R replicas
    swept over G grid points yields ``G*R`` replicas — R repetitions
    (distinct random substreams) at each parameter point.  Replica
    indices enumerate the list, which keeps every replica's stream path
    globally disjoint; the varied parameters are recorded per shard in
    its manifest, so downstream analysis groups by them via
    :meth:`repro.store.ShardStore.group_by`.
    """
    if repeats is None:
        repeats = base.replicas
    if repeats < 1:
        raise ValueError(f"need >= 1 repeat per grid point, got {repeats}")
    if not grid:
        raise ValueError("empty sweep grid")
    specs: list[ReplicaSpec] = []
    for point in grid:
        unknown = set(point) - set(_SWEEPABLE)
        if unknown:
            raise ValueError(
                f"cannot sweep {sorted(unknown)}; sweepable: {sorted(_SWEEPABLE)}"
            )
        app = point.get("app", base.app)
        if app not in _APPS:
            raise ValueError(
                f"unknown app {app!r}; expected one of {sorted(_APPS)}"
            )
        rate = point.get("arrival_rate", base.arrival_rate)
        if rate is None:
            rate = _APPS[app]
        for _ in range(repeats):
            index = len(specs)
            specs.append(
                replace(
                    base.replica(index),
                    app=app,
                    arrival_rate=rate,
                    n_requests=point.get("n_requests", base.n_requests),
                    sample_every=point.get("sample_every", base.sample_every),
                )
            )
    return specs


# -- streaming collection into an on-disk shard store ------------------------


def replica_params(spec: ReplicaSpec) -> dict[str, Any]:
    """The spec parameters a shard manifest records for grouping."""
    return {
        "n_requests": spec.n_requests,
        "arrival_rate": spec.arrival_rate,
        "sample_every": spec.sample_every,
    }


@dataclass(frozen=True)
class ShardTask:
    """One worker's assignment: run a replica, stream it to a shard dir."""

    replica: ReplicaSpec
    directory: str
    compress: bool = False
    round: int = 0
    #: Stream layout the shard is written in (``"jsonl"``/``"columnar"``).
    codec: str = "jsonl"


def write_replica_shard(task: ShardTask) -> ShardManifest:
    """Worker entry point: simulate one replica straight onto disk.

    The tracer streams every record into a :class:`ShardWriter` the
    moment it is collected (``keep_records=False`` — only the sampled
    spans are held until the end), so the worker's memory stays bounded
    and the only thing pickled back through the pool is the manifest.
    """
    spec = task.replica
    writer = ShardWriter(
        Path(task.directory) / shard_dirname(spec.index),
        index=spec.index,
        app=spec.app,
        seed=spec.seed,
        params=replica_params(spec),
        compress=task.compress,
        round=task.round,
        codec=task.codec,
    )
    streams = replica_streams(spec.seed, spec.index)
    tracer = Tracer(
        sample_every=spec.sample_every, sink=writer, keep_records=False
    )
    if spec.app == "gfs":
        run = run_gfs_workload(
            n_requests=spec.n_requests,
            arrival_rate=spec.arrival_rate,
            streams=streams,
            tracer=tracer,
        )
        duration = run.env.now
    elif spec.app == "webapp":
        run_webapp_workload(
            n_requests=spec.n_requests,
            arrival_rate=spec.arrival_rate,
            streams=streams,
            tracer=tracer,
        )
        duration = writer.extent
    else:
        run_mapreduce_jobs(streams=streams, tracer=tracer)
        duration = writer.extent
    tracer.close()
    return writer.finalize(duration)


@dataclass
class StoreFleetResult:
    """The outcome of a fleet collection that persisted shards to disk."""

    directory: Path
    manifests: list[ShardManifest]
    workers: int
    elapsed_seconds: float
    #: Collection round these manifests belong to (0 = initial collect).
    round: int = 0

    @property
    def n_records(self) -> int:
        return sum(m.n_records for m in self.manifests)

    @property
    def total_simulated_time(self) -> float:
        return sum(m.duration for m in self.manifests)

    def store(self):
        """Open the collected shards as a :class:`~repro.store.ShardStore`.

        The returned store is a lazy :class:`~repro.tracing.TraceSource`
        — hand it straight to ``characterize_source`` /
        ``train_per_class`` / ``compare_workloads`` without merging.
        """
        from ..store import ShardStore

        return ShardStore(self.directory)


def collect_fleet_to_store(
    spec: Optional[FleetSpec] = None,
    directory: str | Path = "traces",
    workers: int = 1,
    compress: bool = False,
    replica_specs: Optional[Sequence[ReplicaSpec]] = None,
    on_shard: Optional[Callable[[int, ShardManifest], None]] = None,
    append: bool = False,
    codec: str = "jsonl",
    **spec_kwargs,
) -> StoreFleetResult:
    """Run a fleet (or explicit sweep list) streaming shards to ``directory``.

    Unlike :func:`collect_fleet`, no trace records cross the process
    pool: each replica writes ``directory/shard-<idx>/`` as it runs and
    only per-shard manifests come back.  ``on_shard(index, manifest)``
    fires as each shard lands on disk.  Stitch the store back into one
    trace timeline with :class:`repro.store.ShardStore` (or
    ``repro merge``); the result is byte-identical to
    ``merge_replicas(collect_replicas(...))`` for any worker count.

    ``append=True`` adds a new collection **round** to an existing
    store: replica indices continue past the largest shard index
    already on disk, so — replica streams being pure functions of
    ``(seed, index)`` — collecting N replicas and appending M more with
    the same seed produces byte-identical stream files to collecting
    N+M in one go.  Each round records which shards it produced in a
    ``round-<n>.json`` file at the store root (folded into one
    ``index.json`` by :func:`repro.store.compact_store`).

    ``codec`` selects the per-shard stream layout (``"jsonl"`` line
    files or the binary ``"columnar"`` struct-of-arrays layout); the
    simulated records are identical either way, only the on-disk
    encoding differs, and a store may mix codecs across rounds.
    """
    if replica_specs is None:
        if spec is None:
            spec = FleetSpec(**spec_kwargs)
        elif spec_kwargs:
            raise TypeError(
                "pass either a FleetSpec or keyword fields, not both"
            )
        replica_specs = [spec.replica(k) for k in range(spec.replicas)]
    elif spec is not None or spec_kwargs:
        raise TypeError("pass either replica_specs or a spec, not both")
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    existing = sorted(directory.glob("shard-*/manifest.json"))
    round_index = 0
    if append:
        if not existing:
            raise FileNotFoundError(
                f"append=True but {directory} holds no shard store "
                "(collect without append first)"
            )
        manifests_on_disk = [ShardManifest.load(p) for p in existing]
        start_index = max(m.index for m in manifests_on_disk) + 1
        round_index = max(m.round for m in manifests_on_disk) + 1
        replica_specs = [
            replace(r, index=r.index + start_index) for r in replica_specs
        ]
    elif existing:
        raise FileExistsError(
            f"{directory} already holds a shard store; pass append=True "
            "to add a collection round (or choose a fresh directory)"
        )
    tasks = [
        ShardTask(
            replica=r,
            directory=str(directory),
            compress=compress,
            round=round_index,
            codec=codec,
        )
        for r in replica_specs
    ]
    start = time.perf_counter()
    manifests = run_sharded(
        write_replica_shard, tasks, workers, on_result=on_shard
    )
    elapsed = time.perf_counter() - start
    write_round_file(directory, round_index, [m.index for m in manifests])
    return StoreFleetResult(
        directory=directory,
        manifests=manifests,
        workers=workers,
        elapsed_seconds=elapsed,
        round=round_index,
    )
