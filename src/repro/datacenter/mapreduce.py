"""MapReduce-like batch framework — the Ganapathi et al. workload.

Jobs split an input into map tasks (read + compute + intermediate
write), shuffle intermediate data over the network, and run reduce
tasks (compute + output write).  Per-task subsystem records and spans
use the canonical stage names, and per-job execution features are
exposed for statistics-driven execution-time modeling (the KCCA use
case).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..simulation import AllOf, Environment, RandomStreams
from ..tracing import READ, WRITE, RequestRecord, Tracer
from .machine import Machine, MachineSpec

__all__ = ["JobResult", "MapReduceCluster", "MapReduceJob", "MapReduceSpec"]

MIB = 1024 * 1024


@dataclass(frozen=True)
class MapReduceSpec:
    """Framework configuration and per-byte processing costs."""

    workers: int = 4
    map_cpu_per_byte: float = 2e-9  # core-seconds per input byte
    reduce_cpu_per_byte: float = 3e-9
    task_overhead: float = 1e-3  # scheduling/startup per task (s)
    intermediate_ratio: float = 0.4  # map output / map input
    output_ratio: float = 0.5  # reduce output / reduce input
    memory_fraction: float = 0.1  # buffer footprint vs bytes processed

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError(f"need >= 1 worker, got {self.workers}")


@dataclass(slots=True)
class MapReduceJob:
    """One job: input size and task parallelism."""

    name: str
    input_bytes: int
    n_map: int
    n_reduce: int

    def __post_init__(self) -> None:
        if self.input_bytes <= 0 or self.n_map < 1 or self.n_reduce < 1:
            raise ValueError(f"invalid job {self!r}")


@dataclass(slots=True)
class JobResult:
    """Outcome and features of a completed job (KCCA feature vector)."""

    job: MapReduceJob
    submit_time: float
    completion_time: float
    map_bytes: int
    shuffle_bytes: int
    output_bytes: int

    @property
    def execution_time(self) -> float:
        return self.completion_time - self.submit_time

    def feature_vector(self) -> np.ndarray:
        """The task features Ganapathi et al. regress execution time on."""
        return np.array(
            [
                float(self.job.input_bytes),
                float(self.job.n_map),
                float(self.job.n_reduce),
                float(self.shuffle_bytes),
            ]
        )


class MapReduceCluster:
    """Workers executing map/shuffle/reduce phases of submitted jobs."""

    def __init__(
        self,
        env: Environment,
        spec: MapReduceSpec,
        streams: RandomStreams,
        tracer: Tracer,
        machine_spec: MachineSpec | None = None,
        machines: list[Machine] | None = None,
    ):
        if machines is not None and len(machines) != spec.workers:
            raise ValueError(
                f"got {len(machines)} machines for {spec.workers} workers"
            )
        machine_spec = machine_spec or MachineSpec()
        self.env = env
        self.spec = spec
        self.tracer = tracer
        self.rng = streams.get("mapreduce/placement")
        # Workers can share machines with a serving tenant (pass
        # ``machines``) for colocation/interference studies.
        self.workers = machines or [
            Machine(env, f"worker-{i}", machine_spec, streams, tracer)
            for i in range(spec.workers)
        ]
        self.results: list[JobResult] = []
        self._next_task = 0

    def _worker_for(self, task_index: int) -> Machine:
        return self.workers[task_index % len(self.workers)]

    def _task(
        self,
        machine: Machine,
        request_class: str,
        read_bytes: int,
        write_bytes: int,
        cpu_per_byte: float,
        lbn: int,
    ):
        """Process generator for one map or reduce task."""
        env = self.env
        tracer = self.tracer
        spec = self.spec
        request_id = tracer.new_request_id()
        record = RequestRecord(
            request_id=request_id,
            request_class=request_class,
            server=machine.name,
            arrival_time=env.now,
            network_bytes=max(read_bytes, write_bytes),
            memory_bytes=max(4096, int((read_bytes + write_bytes)
                                       * spec.memory_fraction)),
            memory_op=READ if request_class == "map" else WRITE,
            storage_bytes=read_bytes + write_bytes,
            storage_op=READ if read_bytes >= write_bytes else WRITE,
        )
        root = tracer.start_span(request_id, "request", machine.name, env.now)
        yield env.timeout(spec.task_overhead)

        if read_bytes > 0:
            span = tracer.start_span(request_id, "storage", machine.name,
                                     env.now, root)
            yield env.process(machine.disk.io(request_id, lbn, read_bytes, READ))
            tracer.end_span(span, env.now)

        span = tracer.start_span(request_id, "memory", machine.name, env.now, root)
        yield env.process(
            machine.memory.access(
                request_id, lbn * 4096 % (1 << 26), record.memory_bytes,
                record.memory_op,
            )
        )
        tracer.end_span(span, env.now)

        span = tracer.start_span(request_id, "cpu_lookup", machine.name,
                                 env.now, root)
        busy = yield env.process(
            machine.cpu.compute(
                request_id, cpu_per_byte * max(read_bytes, write_bytes), "lookup"
            )
        )
        record.cpu_busy_seconds += busy
        tracer.end_span(span, env.now)

        if write_bytes > 0:
            span = tracer.start_span(request_id, "storage", machine.name,
                                     env.now, root)
            yield env.process(
                machine.disk.io(request_id, lbn + (1 << 20), write_bytes, WRITE)
            )
            tracer.end_span(span, env.now)

        record.completion_time = env.now
        tracer.end_span(root, env.now)
        tracer.record_request(record)
        return record

    def _shuffle(self, request_id: int, src: Machine, dst: Machine, size: int):
        yield self.env.process(src.nic.transfer(request_id, size, "tx"))
        yield self.env.process(dst.nic.transfer(request_id, size, "rx"))

    def run_job(self, job: MapReduceJob):
        """Process generator: execute a job; returns its JobResult."""
        env = self.env
        spec = self.spec
        submit = env.now
        split = job.input_bytes // job.n_map

        # Map phase (parallel across workers).
        map_tasks = []
        for m in range(job.n_map):
            machine = self._worker_for(self._next_task)
            self._next_task += 1
            lbn = int(self.rng.integers(0, 1 << 24))
            map_tasks.append(
                env.process(
                    self._task(
                        machine,
                        "map",
                        read_bytes=split,
                        write_bytes=int(split * spec.intermediate_ratio),
                        cpu_per_byte=spec.map_cpu_per_byte,
                        lbn=lbn,
                    )
                )
            )
        yield AllOf(env, map_tasks)

        # Shuffle: all-to-all transfer of intermediate data.
        shuffle_bytes = int(job.input_bytes * spec.intermediate_ratio)
        per_pair = max(1, shuffle_bytes // (job.n_map * job.n_reduce))
        shuffle_id = self.tracer.new_request_id()
        transfers = []
        for m in range(job.n_map):
            for r in range(job.n_reduce):
                src = self._worker_for(m)
                dst = self._worker_for(job.n_map + r)
                transfers.append(
                    env.process(self._shuffle(shuffle_id, src, dst, per_pair))
                )
        yield AllOf(env, transfers)

        # Reduce phase.
        reduce_input = shuffle_bytes // job.n_reduce
        reduce_tasks = []
        for r in range(job.n_reduce):
            machine = self._worker_for(self._next_task)
            self._next_task += 1
            reduce_tasks.append(
                env.process(
                    self._task(
                        machine,
                        "reduce",
                        read_bytes=0,
                        write_bytes=max(
                            1, int(reduce_input * spec.output_ratio)
                        ),
                        cpu_per_byte=spec.reduce_cpu_per_byte,
                        lbn=int(self.rng.integers(0, 1 << 24)),
                    )
                )
            )
        yield AllOf(env, reduce_tasks)

        result = JobResult(
            job=job,
            submit_time=submit,
            completion_time=env.now,
            map_bytes=job.input_bytes,
            shuffle_bytes=shuffle_bytes,
            output_bytes=int(shuffle_bytes * spec.output_ratio),
        )
        self.results.append(result)
        return result
