"""Fault injection for availability and detection studies.

Schedules device degradations (and repairs) against a running cluster,
so the in-depth anomaly-detection stack can be exercised on incidents
with a time axis: when did the fault start, which machine, which
device — the "error detection" study the paper reserves for in-depth
models.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..simulation import Environment
from .devices import DiskSpec
from .machine import Machine

__all__ = ["DiskFault", "FaultInjector"]


@dataclass(frozen=True)
class DiskFault:
    """One scheduled disk degradation (and optional repair)."""

    machine: str
    start_time: float
    degraded_spec: DiskSpec
    repair_time: float | None = None  # None = never repaired

    def __post_init__(self) -> None:
        if self.start_time < 0:
            raise ValueError("fault start must be >= 0")
        if self.repair_time is not None and self.repair_time <= self.start_time:
            raise ValueError("repair must come after the fault starts")


class FaultInjector:
    """Applies scheduled faults to a set of machines."""

    def __init__(
        self,
        env: Environment,
        machines: list[Machine],
        faults: list[DiskFault],
    ):
        self._machines = {m.name: m for m in machines}
        for fault in faults:
            if fault.machine not in self._machines:
                raise ValueError(f"unknown machine {fault.machine!r}")
        self.env = env
        self.faults = list(faults)
        self.log: list[tuple[float, str, str]] = []
        for fault in self.faults:
            env.process(self._inject(fault))

    def _inject(self, fault: DiskFault):
        machine = self._machines[fault.machine]
        healthy_spec = machine.disk.model.spec
        delay = fault.start_time - self.env.now
        if delay > 0:
            yield self.env.timeout(delay)
        machine.disk.replace_spec(fault.degraded_spec)
        self.log.append((self.env.now, fault.machine, "degraded"))
        if fault.repair_time is not None:
            yield self.env.timeout(fault.repair_time - fault.start_time)
            machine.disk.replace_spec(healthy_spec)
            self.log.append((self.env.now, fault.machine, "repaired"))
