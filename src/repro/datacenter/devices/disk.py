"""Mechanical disk model: seek, rotation, transfer, caching.

The storage substrate under the GFS simulator.  The analytic part
(:class:`DiskModel`) computes per-I/O service times from head position
and cache state and is reusable outside the event loop (the replay
validator uses it directly); :class:`Disk` wraps it with a request
queue and emits :class:`StorageRecord` trace entries.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ...simulation import Environment, Resource
from ...tracing import READ, StorageRecord, Tracer

__all__ = ["Disk", "DiskModel", "DiskSpec"]


@dataclass(frozen=True)
class DiskSpec:
    """Parameters of the mechanical disk model.

    Defaults approximate a 7200 rpm nearline SATA drive with a
    write-back cache, the kind of disk GFS chunkservers of the paper's
    era used.
    """

    block_size: int = 4096  # bytes per logical block
    capacity_blocks: int = 1 << 28  # ~1 TiB of 4 KiB blocks
    min_seek: float = 0.4e-3  # track-to-track seek (s)
    max_seek: float = 8.0e-3  # full-stroke seek (s)
    rpm: float = 7200.0
    transfer_rate: float = 150e6  # sustained media rate (bytes/s)
    controller_overhead: float = 0.15e-3  # per-I/O fixed cost (s)
    write_cache: bool = True
    cache_transfer_rate: float = 600e6  # write-back cache rate (bytes/s)
    cache_flush_probability: float = 0.05  # chance a write stalls on flush
    readahead_blocks: int = 512  # sequential read-ahead window

    @property
    def rotation_period(self) -> float:
        """One full platter revolution in seconds."""
        return 60.0 / self.rpm


class DiskModel:
    """Stateful analytic service-time model for one disk.

    Tracks head position and the read-ahead window so sequential runs
    are detected and serviced at media rate without repositioning —
    the mechanism behind the spatial locality the paper's storage model
    captures with LBN-range Markov states.
    """

    def __init__(self, spec: DiskSpec, rng: np.random.Generator):
        self.spec = spec
        self.rng = rng
        self._head_lbn = 0
        self._readahead_end = -1

    def _blocks(self, size_bytes: int) -> int:
        return max(1, -(-size_bytes // self.spec.block_size))

    def _seek_time(self, distance_blocks: int) -> float:
        if distance_blocks == 0:
            return 0.0
        spec = self.spec
        frac = min(1.0, distance_blocks / spec.capacity_blocks)
        return spec.min_seek + (spec.max_seek - spec.min_seek) * np.sqrt(frac)

    def service_time(self, lbn: int, size_bytes: int, op: str) -> float:
        """Service time for one I/O; updates head and cache state."""
        spec = self.spec
        blocks = self._blocks(size_bytes)
        time = spec.controller_overhead

        if op != READ and spec.write_cache:
            # Write-back: absorbed at cache speed, occasionally stalling
            # on a flush of earlier dirty data.
            time += size_bytes / spec.cache_transfer_rate
            if self.rng.random() < spec.cache_flush_probability:
                time += self._seek_time(abs(lbn - self._head_lbn))
                time += self.rng.uniform(0.0, spec.rotation_period)
            self._head_lbn = lbn + blocks
            self._readahead_end = -1
            return time

        sequential = (
            self._readahead_end >= 0 and self._head_lbn <= lbn <= self._readahead_end
        )
        if sequential:
            # Read-ahead hit: stream at media rate, no repositioning.
            time += size_bytes / spec.transfer_rate
        else:
            time += self._seek_time(abs(lbn - self._head_lbn))
            time += self.rng.uniform(0.0, spec.rotation_period)
            time += size_bytes / spec.transfer_rate
        self._head_lbn = lbn + blocks
        self._readahead_end = lbn + blocks + spec.readahead_blocks
        return time


class Disk:
    """Simulated disk: a FIFO I/O queue in front of a :class:`DiskModel`."""

    def __init__(
        self,
        env: Environment,
        server: str,
        spec: DiskSpec,
        rng: np.random.Generator,
        tracer: Tracer,
    ):
        self.env = env
        self.server = server
        self.model = DiskModel(spec, rng)
        self.tracer = tracer
        self._queue = Resource(env, capacity=1)

    def io(self, request_id: int, lbn: int, size_bytes: int, op: str):
        """Process generator performing one disk I/O; returns duration."""
        submit = self.env.now
        depth = self._queue.count + self._queue.queue_length
        with self._queue.request() as slot:
            yield slot
            duration = self.model.service_time(lbn, size_bytes, op)
            yield self.env.timeout(duration)
        self.tracer.record_storage(
            StorageRecord(
                request_id=request_id,
                server=self.server,
                timestamp=submit,
                lbn=lbn,
                size_bytes=size_bytes,
                op=op,
                duration=self.env.now - submit,
                queue_depth=depth,
            )
        )
        return self.env.now - submit

    def busy_seconds(self) -> float:
        """Cumulative busy slot-time (checkpoint for sliding windows)."""
        return self._queue.meter.busy_time()

    def utilization(self, since: float = 0.0) -> float:
        """Fraction of time the disk arm was busy since ``since``."""
        return self._queue.utilization(since)

    def replace_spec(self, spec: DiskSpec) -> None:
        """Swap the disk's service model mid-simulation.

        The fault-injection hook: degrade (or repair) a disk while the
        cluster is serving traffic.  Queued I/Os complete under the new
        model; head position restarts at the new model's origin.
        """
        self.model = DiskModel(spec, self.model.rng)
