"""CPU device: a pool of cores with per-burst trace records.

Computation demand is expressed in *core-seconds of work*, not
utilization: as the paper argues (§2.1.2), utilization is a property of
workload *and* platform, so the simulator's native unit is work and
utilization is derived per request (busy time over latency).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ...simulation import Environment, Resource
from ...tracing import CpuRecord, Tracer

__all__ = ["Cpu", "CpuSpec"]


@dataclass(frozen=True)
class CpuSpec:
    """Parameters of the CPU device.

    ``speed_factor`` scales all work (1.0 = reference core; 0.5 = a
    small/wimpy core taking twice as long — the paper's small-core
    efficiency studies are run by sweeping this).  ``work_jitter`` is
    the coefficient of variation applied to each burst, modeling
    microarchitectural noise (cache misses, branch mispredictions).
    """

    cores: int = 8
    speed_factor: float = 1.0
    work_jitter: float = 0.03


class Cpu:
    """Simulated multi-core CPU with utilization accounting."""

    def __init__(
        self,
        env: Environment,
        server: str,
        spec: CpuSpec,
        rng: np.random.Generator,
        tracer: Tracer,
    ):
        if spec.cores < 1:
            raise ValueError(f"need >= 1 core, got {spec.cores}")
        if spec.speed_factor <= 0:
            raise ValueError(f"speed_factor must be > 0, got {spec.speed_factor}")
        self.env = env
        self.server = server
        self.spec = spec
        self.rng = rng
        self.tracer = tracer
        self._cores = Resource(env, capacity=spec.cores)

    def compute(self, request_id: int, work_seconds: float, phase: str):
        """Process generator burning ``work_seconds`` of core time.

        Returns the busy time actually consumed (after speed scaling
        and jitter), which callers accumulate into per-request CPU
        utilization.
        """
        if work_seconds < 0:
            raise ValueError(f"negative work {work_seconds!r}")
        with self._cores.request() as slot:
            yield slot
            busy = work_seconds / self.spec.speed_factor
            if self.spec.work_jitter > 0:
                busy *= max(0.1, 1.0 + self.rng.normal(0.0, self.spec.work_jitter))
            start = self.env.now
            yield self.env.timeout(busy)
        self.tracer.record_cpu(
            CpuRecord(
                request_id=request_id,
                server=self.server,
                timestamp=start,
                busy_seconds=busy,
                phase=phase,
            )
        )
        return busy

    def busy_seconds(self) -> float:
        """Cumulative busy slot-time (checkpoint for sliding windows)."""
        return self._cores.meter.busy_time()

    def utilization(self, since: float = 0.0) -> float:
        """Mean fraction of all cores busy since ``since``."""
        return self._cores.utilization(since)
