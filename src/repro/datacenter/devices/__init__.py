"""Device-level models: disk, CPU, memory banks, NIC/link.

Each device couples an analytic service-time model with a simulation
wrapper that queues requests and emits subsystem trace records.
"""

from .cpu import Cpu, CpuSpec
from .disk import Disk, DiskModel, DiskSpec
from .memory import Memory, MemorySpec
from .nic import Nic, NicSpec

__all__ = [
    "Cpu",
    "CpuSpec",
    "Disk",
    "DiskModel",
    "DiskSpec",
    "Memory",
    "MemorySpec",
    "Nic",
    "NicSpec",
]
