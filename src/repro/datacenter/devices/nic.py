"""Network interface / link model.

Messages are serialized over a finite-bandwidth link with propagation
delay.  Arrival (``rx``) records are the network trace stream whose
interarrival process the paper's network queueing model captures.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ...simulation import Environment, Resource
from ...tracing import NetworkRecord, Tracer

__all__ = ["Nic", "NicSpec"]


@dataclass(frozen=True)
class NicSpec:
    """Parameters of the NIC/link model (defaults: 10 GbE datacenter link)."""

    bandwidth: float = 1.25e9  # bytes/s (10 Gb/s)
    propagation: float = 100e-6  # one-way latency (s)
    per_message_overhead: float = 20e-6  # protocol/interrupt cost (s)


class Nic:
    """Simulated NIC: serializes messages onto the link."""

    def __init__(
        self,
        env: Environment,
        server: str,
        spec: NicSpec,
        rng: np.random.Generator,
        tracer: Tracer,
    ):
        if spec.bandwidth <= 0:
            raise ValueError(f"bandwidth must be > 0, got {spec.bandwidth}")
        self.env = env
        self.server = server
        self.spec = spec
        self.rng = rng
        self.tracer = tracer
        self._link = Resource(env, capacity=1)

    def transfer(self, request_id: int, size_bytes: int, direction: str):
        """Process generator moving ``size_bytes`` over the link.

        ``direction`` is ``"rx"`` for messages arriving at this server,
        ``"tx"`` for responses leaving it.  Returns the transfer
        duration.
        """
        if direction not in ("rx", "tx"):
            raise ValueError(f"direction must be 'rx' or 'tx', got {direction!r}")
        spec = self.spec
        submit = self.env.now
        with self._link.request() as slot:
            yield slot
            duration = (
                spec.per_message_overhead
                + spec.propagation
                + size_bytes / spec.bandwidth
            )
            yield self.env.timeout(duration)
        self.tracer.record_network(
            NetworkRecord(
                request_id=request_id,
                server=self.server,
                timestamp=submit,
                size_bytes=size_bytes,
                direction=direction,
            )
        )
        return self.env.now - submit

    def busy_seconds(self) -> float:
        """Cumulative busy slot-time (checkpoint for sliding windows)."""
        return self._link.meter.busy_time()

    def utilization(self, since: float = 0.0) -> float:
        """Fraction of time the link was busy since ``since``."""
        return self._link.utilization(since)
