"""Memory device: banked DRAM with row-buffer behaviour.

The paper's memory model captures "the type of requests (block size,
type ...) and the spatial locality in the granularity of Memory Banks";
this device provides the matching substrate: accesses map to banks,
row-buffer hits stream at full bandwidth, and bank conflicts pay the
activate/precharge penalty.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ...simulation import Environment, Resource
from ...tracing import MemoryRecord, Tracer

__all__ = ["Memory", "MemorySpec"]


@dataclass(frozen=True)
class MemorySpec:
    """Parameters of the banked memory model."""

    banks: int = 8
    channels: int = 2  # concurrent access streams
    bank_interleave: int = 4096  # bytes per bank stripe
    row_hit_latency: float = 30e-9  # row-buffer hit (s)
    row_miss_latency: float = 95e-9  # activate + CAS (s)
    bandwidth: float = 12.8e9  # per-channel stream rate (bytes/s)

    def bank_of(self, address: int) -> int:
        """Bank an address maps to under stripe interleaving."""
        return (address // self.bank_interleave) % self.banks


class Memory:
    """Simulated banked memory with per-access trace records."""

    def __init__(
        self,
        env: Environment,
        server: str,
        spec: MemorySpec,
        rng: np.random.Generator,
        tracer: Tracer,
    ):
        if spec.banks < 1:
            raise ValueError(f"need >= 1 bank, got {spec.banks}")
        self.env = env
        self.server = server
        self.spec = spec
        self.rng = rng
        self.tracer = tracer
        self._channels = Resource(env, capacity=spec.channels)
        self._open_row: dict[int, int] = {}  # bank -> open row id

    def _row_of(self, address: int) -> int:
        # Rows are bank stripes: consecutive stripes on a bank share a row
        # often enough for streaming to hit the row buffer.
        return address // (self.spec.bank_interleave * self.spec.banks)

    def access(self, request_id: int, address: int, size_bytes: int, op: str):
        """Process generator for one memory access burst.

        Returns the access duration.  Row-buffer state persists across
        requests, so access patterns with locality are measurably
        faster — the signal the memory Markov model learns.
        """
        if size_bytes <= 0:
            raise ValueError(f"size must be positive, got {size_bytes}")
        spec = self.spec
        bank = spec.bank_of(address)
        row = self._row_of(address)
        submit = self.env.now
        with self._channels.request() as slot:
            yield slot
            if self._open_row.get(bank) == row:
                latency = spec.row_hit_latency
            else:
                latency = spec.row_miss_latency
                self._open_row[bank] = row
            duration = latency + size_bytes / spec.bandwidth
            yield self.env.timeout(duration)
        self.tracer.record_memory(
            MemoryRecord(
                request_id=request_id,
                server=self.server,
                timestamp=submit,
                bank=bank,
                size_bytes=size_bytes,
                op=op,
                duration=self.env.now - submit,
            )
        )
        return self.env.now - submit

    def busy_seconds(self) -> float:
        """Cumulative busy slot-time (checkpoint for sliding windows)."""
        return self._channels.meter.busy_time()

    def utilization(self, since: float = 0.0) -> float:
        """Mean fraction of channels busy since ``since``."""
        return self._channels.utilization(since)
