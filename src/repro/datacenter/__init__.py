"""Simulated datacenter substrate.

Machines built from device models, plus the three applications the
repository's experiments run: the GFS-like file system (the paper's
Figure 1 workload), a 3-tier web application (the in-depth baseline's
native workload) and a MapReduce-like batch framework.
"""

from .dvfs import (
    DvfsPolicyResult,
    DvfsSetting,
    evaluate_dvfs_policy,
    model_guided_policy,
)
from .failures import DiskFault, FaultInjector
from .gfs import GfsCluster, GfsRequest, GfsSpec
from .machine import Machine, MachineSpec
from .mapreduce import JobResult, MapReduceCluster, MapReduceJob, MapReduceSpec
from .power import EnergyReport, MachinePowerSpec, PowerModel
from .fleet import (
    FleetResult,
    FleetSpec,
    ReplicaResult,
    ReplicaSpec,
    StoreFleetResult,
    collect_fleet,
    collect_fleet_to_store,
    collect_replicas,
    merge_replicas,
    resume_fleet_collection,
    run_replica,
    sweep_grid,
    sweep_replica_specs,
)
from .session import ReplicaSession
from .run import (
    GfsRun,
    default_mapreduce_jobs,
    run_gfs_workload,
    run_mapreduce_jobs,
    run_webapp_workload,
)
from .webapp import WebAppCluster, WebAppSpec, WebRequest, WebRequestClass

__all__ = [
    "DiskFault",
    "DvfsPolicyResult",
    "DvfsSetting",
    "FaultInjector",
    "GfsCluster",
    "evaluate_dvfs_policy",
    "model_guided_policy",
    "GfsRequest",
    "GfsRun",
    "GfsSpec",
    "EnergyReport",
    "FleetResult",
    "StoreFleetResult",
    "collect_fleet_to_store",
    "collect_replicas",
    "merge_replicas",
    "sweep_grid",
    "sweep_replica_specs",
    "FleetSpec",
    "JobResult",
    "Machine",
    "MachinePowerSpec",
    "MachineSpec",
    "PowerModel",
    "MapReduceCluster",
    "MapReduceJob",
    "MapReduceSpec",
    "WebAppCluster",
    "WebAppSpec",
    "WebRequest",
    "WebRequestClass",
    "ReplicaResult",
    "ReplicaSession",
    "ReplicaSpec",
    "collect_fleet",
    "resume_fleet_collection",
    "default_mapreduce_jobs",
    "run_gfs_workload",
    "run_mapreduce_jobs",
    "run_replica",
    "run_webapp_workload",
]
