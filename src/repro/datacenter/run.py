"""One-call experiment drivers: wire engine + cluster + client + tracer.

These helpers cover the standard trace-collection runs the benches and
examples repeat: build an environment, instrument a cluster, drive it
with a workload, return the collected :class:`TraceSet`.

Each helper accepts an optional injected :class:`RandomStreams` so a
coordinating layer (notably :mod:`repro.datacenter.fleet`) can control
seeding — e.g. handing replica ``k`` the substream factory
``RandomStreams(seed).spawn("replica").spawn(str(k))`` so sharded runs
are bit-reproducible regardless of how they are scheduled onto worker
processes.  When ``streams`` is omitted, ``RandomStreams(seed)`` is
used, preserving the historical single-run behavior.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from ..queueing import ArrivalProcess, PoissonArrivals
from ..simulation import Environment, RandomStreams
from ..tracing import Tracer, TraceSet
from ..workloads import OpenLoopClient, WorkloadMix, table2_mix
from .gfs import GfsCluster, GfsSpec
from .machine import MachineSpec
from .mapreduce import JobResult, MapReduceCluster, MapReduceJob, MapReduceSpec
from .webapp import WebAppCluster, WebAppSpec

__all__ = [
    "GfsRun",
    "default_mapreduce_jobs",
    "run_gfs_workload",
    "run_mapreduce_jobs",
    "run_webapp_workload",
]


@dataclass
class GfsRun:
    """Everything a GFS trace-collection run produced."""

    traces: TraceSet
    cluster: GfsCluster
    env: Environment
    duration: float
    settle_time: float = 0.0

    def throughput(self) -> float:
        """Completed requests per simulated second, after warm-up.

        Only requests completing *after* ``settle_time`` count, so a
        warm-up window shrinks both the numerator and the denominator.
        (Historically all completions were divided by the settle-adjusted
        duration, overstating throughput whenever ``settle_time > 0``.)
        """
        if self.duration <= 0:
            return 0.0
        completed = sum(
            1
            for r in self.traces.completed_requests()
            if r.completion_time > self.settle_time
        )
        return completed / self.duration


def run_gfs_workload(
    n_requests: int = 2000,
    seed: int = 0,
    arrival_rate: float = 25.0,
    mix_factory: Callable[[np.random.Generator], WorkloadMix] = table2_mix,
    gfs_spec: Optional[GfsSpec] = None,
    machine_spec: Optional[MachineSpec] = None,
    arrivals: Optional[ArrivalProcess] = None,
    sample_every: int = 1,
    settle_time: float = 0.0,
    streams: Optional[RandomStreams] = None,
    tracer: Optional[Tracer] = None,
) -> GfsRun:
    """Run an open-loop GFS workload and collect traces.

    ``arrival_rate`` is ignored when an explicit ``arrivals`` process is
    passed.  ``settle_time`` marks the warm-up window: requests
    completing inside it are still traced but excluded from
    :meth:`GfsRun.throughput`, and the run duration is counted from the
    end of the window.  ``seed`` is ignored when ``streams`` is passed.
    An injected ``tracer`` (e.g. one streaming to a shard sink)
    supersedes ``sample_every``.
    """
    if n_requests < 1:
        raise ValueError(f"need >= 1 request, got {n_requests}")
    if streams is None:
        streams = RandomStreams(seed)
    env = Environment()
    if tracer is None:
        tracer = Tracer(sample_every=sample_every)
    cluster = GfsCluster(
        env, gfs_spec or GfsSpec(), streams, tracer, machine_spec
    )
    mix = mix_factory(streams.get("workload/mix"))
    if arrivals is None:
        arrivals = PoissonArrivals(arrival_rate, streams.get("workload/arrivals"))
    client = OpenLoopClient(env, cluster.client_request, mix.make_request, arrivals)
    client.start(n_requests)
    env.run()
    return GfsRun(
        traces=tracer.traces,
        cluster=cluster,
        env=env,
        duration=env.now - settle_time,
        settle_time=settle_time,
    )


def run_webapp_workload(
    n_requests: int = 2000,
    seed: int = 0,
    arrival_rate: float = 120.0,
    webapp_spec: Optional[WebAppSpec] = None,
    machine_spec: Optional[MachineSpec] = None,
    arrivals: Optional[ArrivalProcess] = None,
    sample_every: int = 1,
    streams: Optional[RandomStreams] = None,
    tracer: Optional[Tracer] = None,
) -> TraceSet:
    """Run an open-loop 3-tier web workload and collect traces.

    ``seed`` is ignored when an explicit ``streams`` factory is passed;
    an injected ``tracer`` supersedes ``sample_every``.
    """
    if n_requests < 1:
        raise ValueError(f"need >= 1 request, got {n_requests}")
    if streams is None:
        streams = RandomStreams(seed)
    env = Environment()
    if tracer is None:
        tracer = Tracer(sample_every=sample_every)
    cluster = WebAppCluster(
        env, webapp_spec or WebAppSpec(), streams, tracer, machine_spec
    )
    request_rng = streams.get("workload/requests")
    if arrivals is None:
        arrivals = PoissonArrivals(arrival_rate, streams.get("workload/arrivals"))
    client = OpenLoopClient(
        env,
        cluster.client_request,
        lambda: cluster.make_request(request_rng),
        arrivals,
    )
    client.start(n_requests)
    env.run()
    return tracer.traces


def default_mapreduce_jobs(
    rng: np.random.Generator, n_jobs: int = 8
) -> list[MapReduceJob]:
    """Synthesize the standard batch of small MapReduce jobs."""
    return [
        MapReduceJob(
            name=f"job-{i}",
            input_bytes=int(rng.integers(16, 256)) * 1024 * 1024,
            n_map=int(rng.integers(2, 9)),
            n_reduce=int(rng.integers(1, 5)),
        )
        for i in range(n_jobs)
    ]


def run_mapreduce_jobs(
    jobs: Optional[list[MapReduceJob]] = None,
    seed: int = 0,
    spec: Optional[MapReduceSpec] = None,
    machine_spec: Optional[MachineSpec] = None,
    sample_every: int = 1,
    streams: Optional[RandomStreams] = None,
    tracer: Optional[Tracer] = None,
) -> tuple[TraceSet, list[JobResult]]:
    """Run a batch of MapReduce jobs back-to-back; traces + results.

    When ``jobs`` is omitted a default batch is synthesized from the
    ``workload/jobs`` substream — *not* a raw generator seeded directly
    from ``seed`` — so job synthesis honors the repository invariant
    that every stochastic component draws from a named substream.
    ``seed`` is ignored when an explicit ``streams`` factory is passed;
    an injected ``tracer`` supersedes ``sample_every``.
    """
    if streams is None:
        streams = RandomStreams(seed)
    if jobs is None:
        jobs = default_mapreduce_jobs(streams.get("workload/jobs"))
    env = Environment()
    if tracer is None:
        tracer = Tracer(sample_every=sample_every)
    cluster = MapReduceCluster(
        env, spec or MapReduceSpec(), streams, tracer, machine_spec
    )

    def driver(env):
        for job in jobs:
            yield env.process(cluster.run_job(job))

    env.process(driver(env))
    env.run()
    return tracer.traces, cluster.results
