"""One-call experiment drivers: wire engine + cluster + client + tracer.

These helpers cover the standard trace-collection runs the benches and
examples repeat: build an environment, instrument a cluster, drive it
with a workload, return the collected :class:`TraceSet`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from ..queueing import ArrivalProcess, PoissonArrivals
from ..simulation import Environment, RandomStreams
from ..tracing import Tracer, TraceSet
from ..workloads import OpenLoopClient, WorkloadMix, table2_mix
from .gfs import GfsCluster, GfsSpec
from .machine import MachineSpec
from .mapreduce import JobResult, MapReduceCluster, MapReduceJob, MapReduceSpec
from .webapp import WebAppCluster, WebAppSpec

__all__ = [
    "GfsRun",
    "run_gfs_workload",
    "run_mapreduce_jobs",
    "run_webapp_workload",
]


@dataclass
class GfsRun:
    """Everything a GFS trace-collection run produced."""

    traces: TraceSet
    cluster: GfsCluster
    env: Environment
    duration: float

    def throughput(self) -> float:
        """Completed requests per simulated second."""
        completed = len(self.traces.completed_requests())
        return completed / self.duration if self.duration > 0 else 0.0


def run_gfs_workload(
    n_requests: int = 2000,
    seed: int = 0,
    arrival_rate: float = 25.0,
    mix_factory: Callable[[np.random.Generator], WorkloadMix] = table2_mix,
    gfs_spec: Optional[GfsSpec] = None,
    machine_spec: Optional[MachineSpec] = None,
    arrivals: Optional[ArrivalProcess] = None,
    sample_every: int = 1,
    settle_time: float = 0.0,
) -> GfsRun:
    """Run an open-loop GFS workload and collect traces.

    ``arrival_rate`` is ignored when an explicit ``arrivals`` process is
    passed.  ``settle_time`` discards nothing but is added to the run
    duration accounting (callers that want warm-up filtering can drop
    early records from the TraceSet themselves).
    """
    if n_requests < 1:
        raise ValueError(f"need >= 1 request, got {n_requests}")
    streams = RandomStreams(seed)
    env = Environment()
    tracer = Tracer(sample_every=sample_every)
    cluster = GfsCluster(
        env, gfs_spec or GfsSpec(), streams, tracer, machine_spec
    )
    mix = mix_factory(streams.get("workload/mix"))
    if arrivals is None:
        arrivals = PoissonArrivals(arrival_rate, streams.get("workload/arrivals"))
    client = OpenLoopClient(env, cluster.client_request, mix.make_request, arrivals)
    client.start(n_requests)
    env.run()
    return GfsRun(
        traces=tracer.traces,
        cluster=cluster,
        env=env,
        duration=env.now - settle_time,
    )


def run_webapp_workload(
    n_requests: int = 2000,
    seed: int = 0,
    arrival_rate: float = 120.0,
    webapp_spec: Optional[WebAppSpec] = None,
    machine_spec: Optional[MachineSpec] = None,
    arrivals: Optional[ArrivalProcess] = None,
    sample_every: int = 1,
) -> TraceSet:
    """Run an open-loop 3-tier web workload and collect traces."""
    if n_requests < 1:
        raise ValueError(f"need >= 1 request, got {n_requests}")
    streams = RandomStreams(seed)
    env = Environment()
    tracer = Tracer(sample_every=sample_every)
    cluster = WebAppCluster(
        env, webapp_spec or WebAppSpec(), streams, tracer, machine_spec
    )
    request_rng = streams.get("workload/requests")
    if arrivals is None:
        arrivals = PoissonArrivals(arrival_rate, streams.get("workload/arrivals"))
    client = OpenLoopClient(
        env,
        cluster.client_request,
        lambda: cluster.make_request(request_rng),
        arrivals,
    )
    client.start(n_requests)
    env.run()
    return tracer.traces


def run_mapreduce_jobs(
    jobs: Optional[list[MapReduceJob]] = None,
    seed: int = 0,
    spec: Optional[MapReduceSpec] = None,
    machine_spec: Optional[MachineSpec] = None,
    sample_every: int = 1,
) -> tuple[TraceSet, list[JobResult]]:
    """Run a batch of MapReduce jobs back-to-back; traces + results."""
    if jobs is None:
        rng = np.random.default_rng(seed)
        jobs = [
            MapReduceJob(
                name=f"job-{i}",
                input_bytes=int(rng.integers(16, 256)) * 1024 * 1024,
                n_map=int(rng.integers(2, 9)),
                n_reduce=int(rng.integers(1, 5)),
            )
            for i in range(8)
        ]
    streams = RandomStreams(seed)
    env = Environment()
    tracer = Tracer(sample_every=sample_every)
    cluster = MapReduceCluster(
        env, spec or MapReduceSpec(), streams, tracer, machine_spec
    )

    def driver(env):
        for job in jobs:
            yield env.process(cluster.run_job(job))

    env.process(driver(env))
    env.run()
    return tracer.traces, cluster.results
