"""One-call experiment drivers: wire engine + cluster + client + tracer.

These helpers cover the standard trace-collection runs the benches and
examples repeat: build an environment, instrument a cluster, drive it
with a workload, return the collected :class:`TraceSet`.

The wiring itself lives in :mod:`repro.datacenter.session` (the
``build_*_session`` functions), shared with the checkpointable
:class:`~repro.datacenter.session.ReplicaSession` — a one-call run here
and a stepwise session replaying the same spec execute the identical
component graph in the identical order, which is what makes engine
checkpoints restorable against these drivers' output.

Each helper accepts an optional injected :class:`RandomStreams` so a
coordinating layer (notably :mod:`repro.datacenter.fleet`) can control
seeding — e.g. handing replica ``k`` the substream factory
``RandomStreams(seed).spawn("replica").spawn(str(k))`` so sharded runs
are bit-reproducible regardless of how they are scheduled onto worker
processes.  When ``streams`` is omitted, ``RandomStreams(seed)`` is
used, preserving the historical single-run behavior.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from ..queueing import ArrivalProcess
from ..simulation import Environment, RandomStreams
from ..tracing import Tracer, TraceSet
from ..workloads import WorkloadMix, table2_mix
from .gfs import GfsCluster, GfsSpec
from .machine import MachineSpec
from .mapreduce import JobResult, MapReduceJob, MapReduceSpec
from .session import (
    build_gfs_session,
    build_mapreduce_session,
    build_webapp_session,
    default_mapreduce_jobs,
)
from .webapp import WebAppSpec

__all__ = [
    "GfsRun",
    "default_mapreduce_jobs",
    "run_gfs_workload",
    "run_mapreduce_jobs",
    "run_webapp_workload",
]


@dataclass
class GfsRun:
    """Everything a GFS trace-collection run produced."""

    traces: TraceSet
    cluster: GfsCluster
    env: Environment
    duration: float
    settle_time: float = 0.0

    def throughput(self) -> float:
        """Completed requests per simulated second, after warm-up.

        Only requests completing *after* ``settle_time`` count, so a
        warm-up window shrinks both the numerator and the denominator.
        (Historically all completions were divided by the settle-adjusted
        duration, overstating throughput whenever ``settle_time > 0``.)
        """
        if self.duration <= 0:
            return 0.0
        completed = sum(
            1
            for r in self.traces.completed_requests()
            if r.completion_time > self.settle_time
        )
        return completed / self.duration


def run_gfs_workload(
    n_requests: int = 2000,
    seed: int = 0,
    arrival_rate: float = 25.0,
    mix_factory: Callable[[np.random.Generator], WorkloadMix] = table2_mix,
    gfs_spec: Optional[GfsSpec] = None,
    machine_spec: Optional[MachineSpec] = None,
    arrivals: Optional[ArrivalProcess] = None,
    sample_every: int = 1,
    settle_time: float = 0.0,
    streams: Optional[RandomStreams] = None,
    tracer: Optional[Tracer] = None,
) -> GfsRun:
    """Run an open-loop GFS workload and collect traces.

    ``arrival_rate`` is ignored when an explicit ``arrivals`` process is
    passed.  ``settle_time`` marks the warm-up window: requests
    completing inside it are still traced but excluded from
    :meth:`GfsRun.throughput`, and the run duration is counted from the
    end of the window.  ``seed`` is ignored when ``streams`` is passed.
    An injected ``tracer`` (e.g. one streaming to a shard sink)
    supersedes ``sample_every``.
    """
    if n_requests < 1:
        raise ValueError(f"need >= 1 request, got {n_requests}")
    if streams is None:
        streams = RandomStreams(seed)
    if tracer is None:
        tracer = Tracer(sample_every=sample_every)
    parts = build_gfs_session(
        n_requests,
        streams,
        tracer,
        arrival_rate=arrival_rate,
        mix_factory=mix_factory,
        gfs_spec=gfs_spec,
        machine_spec=machine_spec,
        arrivals=arrivals,
    )
    parts.env.run()
    return GfsRun(
        traces=tracer.traces,
        cluster=parts.cluster,
        env=parts.env,
        duration=parts.env.now - settle_time,
        settle_time=settle_time,
    )


def run_webapp_workload(
    n_requests: int = 2000,
    seed: int = 0,
    arrival_rate: float = 120.0,
    webapp_spec: Optional[WebAppSpec] = None,
    machine_spec: Optional[MachineSpec] = None,
    arrivals: Optional[ArrivalProcess] = None,
    sample_every: int = 1,
    streams: Optional[RandomStreams] = None,
    tracer: Optional[Tracer] = None,
) -> TraceSet:
    """Run an open-loop 3-tier web workload and collect traces.

    ``seed`` is ignored when an explicit ``streams`` factory is passed;
    an injected ``tracer`` supersedes ``sample_every``.
    """
    if n_requests < 1:
        raise ValueError(f"need >= 1 request, got {n_requests}")
    if streams is None:
        streams = RandomStreams(seed)
    if tracer is None:
        tracer = Tracer(sample_every=sample_every)
    parts = build_webapp_session(
        n_requests,
        streams,
        tracer,
        arrival_rate=arrival_rate,
        webapp_spec=webapp_spec,
        machine_spec=machine_spec,
        arrivals=arrivals,
    )
    parts.env.run()
    return tracer.traces


def run_mapreduce_jobs(
    jobs: Optional[list[MapReduceJob]] = None,
    seed: int = 0,
    spec: Optional[MapReduceSpec] = None,
    machine_spec: Optional[MachineSpec] = None,
    sample_every: int = 1,
    streams: Optional[RandomStreams] = None,
    tracer: Optional[Tracer] = None,
) -> tuple[TraceSet, list[JobResult]]:
    """Run a batch of MapReduce jobs back-to-back; traces + results.

    When ``jobs`` is omitted a default batch is synthesized from the
    ``workload/jobs`` substream — *not* a raw generator seeded directly
    from ``seed`` — so job synthesis honors the repository invariant
    that every stochastic component draws from a named substream.
    ``seed`` is ignored when an explicit ``streams`` factory is passed;
    an injected ``tracer`` supersedes ``sample_every``.
    """
    if streams is None:
        streams = RandomStreams(seed)
    if tracer is None:
        tracer = Tracer(sample_every=sample_every)
    parts = build_mapreduce_session(
        streams, tracer, jobs=jobs, spec=spec, machine_spec=machine_spec
    )
    parts.env.run()
    return tracer.traces, parts.cluster.results
