"""A simulated server: CPU + memory + disk + NIC.

Machines bundle the four device models that correspond one-to-one to
the four subsystem models in KOOZA (processor, memory, storage,
network).  Applications (GFS, the 3-tier web app, MapReduce) run
requests across a machine's devices.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..simulation import Environment, RandomStreams
from ..tracing import Tracer
from .devices import Cpu, CpuSpec, Disk, DiskSpec, Memory, MemorySpec, Nic, NicSpec

__all__ = ["Machine", "MachineSpec"]


@dataclass(frozen=True)
class MachineSpec:
    """Hardware configuration of one server.

    Evaluating different server configurations without application
    access is the paper's headline use case — swap specs here and rerun
    the same workload or model replay.
    """

    cpu: CpuSpec = field(default_factory=CpuSpec)
    memory: MemorySpec = field(default_factory=MemorySpec)
    disk: DiskSpec = field(default_factory=DiskSpec)
    nic: NicSpec = field(default_factory=NicSpec)


class Machine:
    """One server with its four devices and a name used in trace records."""

    def __init__(
        self,
        env: Environment,
        name: str,
        spec: MachineSpec,
        streams: RandomStreams,
        tracer: Tracer,
    ):
        self.env = env
        self.name = name
        self.spec = spec
        # Cpu draws only normals and Disk only raw doubles, so both take
        # block-prefetched wrappers (bit-identical to scalar draws, see
        # BufferedStream); Memory and Nic never draw and keep raw streams.
        self.cpu = Cpu(env, name, spec.cpu, streams.buffered(f"{name}/cpu"), tracer)
        self.memory = Memory(
            env, name, spec.memory, streams.get(f"{name}/memory"), tracer
        )
        self.disk = Disk(env, name, spec.disk, streams.buffered(f"{name}/disk"), tracer)
        self.nic = Nic(env, name, spec.nic, streams.get(f"{name}/nic"), tracer)

    def utilization_report(self, since: float = 0.0) -> dict[str, float]:
        """Busy fractions of all four devices since ``since``."""
        return {
            "cpu": self.cpu.utilization(since),
            "memory": self.memory.utilization(since),
            "disk": self.disk.utilization(since),
            "nic": self.nic.utilization(since),
        }

    def busy_report(self) -> dict[str, float]:
        """Cumulative busy slot-seconds per device.

        Checkpoint these and diff to get utilization over sliding
        windows (what the continuous profiler does).
        """
        return {
            "cpu": self.cpu.busy_seconds(),
            "memory": self.memory.busy_seconds(),
            "disk": self.disk.busy_seconds(),
            "nic": self.nic.busy_seconds(),
        }

    def device_capacity(self, device: str) -> int:
        """Parallel slots of one device (for busy-time normalization)."""
        capacities = {
            "cpu": self.spec.cpu.cores,
            "memory": self.spec.memory.channels,
            "disk": 1,
            "nic": 1,
        }
        return capacities[device]
