"""GFS-like distributed file system — the paper's Figure 1 application.

A request arrives at a chunkserver over the network, exercises the CPU
(and memory) to locate and verify the data, performs I/O against the
storage system, exercises the CPU again to aggregate the data, and the
response is transmitted back to the client:

    Network -> CPU -> Memory -> Disk -> CPU -> Network

This module simulates that flow end to end, instrumented with both
subsystem records and Dapper-style spans.  An optional master server
resolves chunk locations (clients cache locations, so only a fraction
of requests pay the master RPC), and writes can replicate to ``R``
chunkservers in parallel as in real GFS.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..simulation import AllOf, Environment, RandomStreams
from ..tracing import READ, WRITE, RequestRecord, Tracer
from .machine import Machine, MachineSpec

__all__ = ["GfsCluster", "GfsRequest", "GfsSpec"]

#: Size of a request/acknowledgement header message in bytes.
HEADER_BYTES = 256


@dataclass(slots=True)
class GfsRequest:
    """One client request against the file system.

    ``lbn`` is the logical block the I/O starts at (chosen by the
    workload's file-access pattern); ``memory_bytes`` is the buffer/
    metadata footprint the chunkserver touches for this request.
    """

    request_class: str
    op: str  # READ | WRITE
    size_bytes: int
    lbn: int
    memory_bytes: int
    memory_op: str = READ

    def __post_init__(self) -> None:
        if self.op not in (READ, WRITE):
            raise ValueError(f"op must be read/write, got {self.op!r}")
        if self.size_bytes <= 0:
            raise ValueError(f"size must be positive, got {self.size_bytes}")


@dataclass(frozen=True)
class GfsSpec:
    """Configuration of the GFS cluster and its service costs.

    CPU costs are calibrated so achieved per-request utilization lands
    in the few-percent range the paper's Table 2 reports (2.1% for a
    64 KiB read, 5.1% for a 4 MiB write on their testbed).
    """

    chunkservers: int = 1
    replication: int = 1  # replicas per write (1 = paper's simple requests)
    max_io_bytes: int = 4 << 20  # chunkserver splits larger I/Os
    lookup_work: float = 100e-6  # CPU: locate chunk, verify handle (s)
    read_byte_work: float = 0.8e-9  # CPU: checksum/aggregate per byte read (s)
    write_byte_work: float = 0.15e-9  # CPU: checksum per byte written (s)
    ack_work: float = 40e-6  # CPU: build response (s)
    master_cache_hit: float = 0.95  # client location-cache hit probability
    master_work: float = 30e-6  # master CPU per location lookup (s)
    buffer_pool_bytes: int = 1 << 26  # chunkserver buffer pool (64 MiB)


class GfsCluster:
    """A master plus ``N`` chunkservers servicing client requests."""

    def __init__(
        self,
        env: Environment,
        spec: GfsSpec,
        streams: RandomStreams,
        tracer: Tracer,
        machine_spec: MachineSpec | None = None,
        machines: list[Machine] | None = None,
    ):
        if machines is not None and len(machines) != spec.chunkservers:
            raise ValueError(
                f"got {len(machines)} machines for {spec.chunkservers} "
                "chunkservers"
            )
        if spec.chunkservers < 1:
            raise ValueError(f"need >= 1 chunkserver, got {spec.chunkservers}")
        if not 1 <= spec.replication <= spec.chunkservers:
            raise ValueError(
                f"replication {spec.replication} must be in "
                f"[1, {spec.chunkservers}]"
            )
        machine_spec = machine_spec or MachineSpec()
        self.env = env
        self.spec = spec
        self.tracer = tracer
        # Placement draws raw doubles only (cache-hit checks): buffered.
        self.rng = streams.buffered("gfs/placement")
        self.master = Machine(env, "master", machine_spec, streams, tracer)
        # Chunkservers can share machines with other tenants (pass
        # ``machines``) for colocation/QoS studies.
        self.chunkservers = machines or [
            Machine(env, f"chunkserver-{i}", machine_spec, streams, tracer)
            for i in range(spec.chunkservers)
        ]
        # The requesting client's own link: the bottleneck where
        # synchronized striped-read responses collide (TCP incast).
        self.client = Machine(env, "client", machine_spec, streams, tracer)
        # Per-chunkserver rotating buffer-pool allocation cursor: requests
        # walk the pool, producing the cyclic bank pattern the memory
        # Markov model learns.
        self._buffer_cursor = [0] * spec.chunkservers

    def place(self, lbn: int) -> int:
        """Primary chunkserver index for a block (static placement)."""
        chunk = lbn // 16384  # 64 MiB chunks of 4 KiB blocks
        return chunk % self.spec.chunkservers

    def _allocate_buffer(self, server_index: int, size_bytes: int) -> int:
        """Next buffer address from the rotating pool."""
        address = self._buffer_cursor[server_index]
        limit = self.spec.buffer_pool_bytes
        self._buffer_cursor[server_index] = (address + size_bytes) % limit
        return address

    def client_request(self, request: GfsRequest):
        """Process generator: full round trip of one client request.

        Returns the completed :class:`RequestRecord`.
        """
        env = self.env
        tracer = self.tracer
        request_id = tracer.new_request_id()
        primary_index = self.place(request.lbn)
        primary = self.chunkservers[primary_index]

        record = RequestRecord(
            request_id=request_id,
            request_class=request.request_class,
            server=primary.name,
            arrival_time=env.now,
            network_bytes=request.size_bytes,
            memory_bytes=request.memory_bytes,
            memory_op=request.memory_op,
            storage_bytes=request.size_bytes,
            storage_op=request.op,
        )
        root = tracer.start_span(request_id, "request", primary.name, env.now)

        # -- optional master lookup (client location-cache miss) ----------
        if self.rng.random() >= self.spec.master_cache_hit:
            span = tracer.start_span(
                request_id, "master_lookup", self.master.name, env.now, root
            )
            yield env.process(
                self.master.nic.transfer(request_id, HEADER_BYTES, "rx")
            )
            busy = yield env.process(
                self.master.cpu.compute(request_id, self.spec.master_work, "lookup")
            )
            record.cpu_busy_seconds += busy
            yield env.process(
                self.master.nic.transfer(request_id, HEADER_BYTES, "tx")
            )
            tracer.end_span(span, env.now)

        # -- primary chunkserver services the request ----------------------
        busy = yield env.process(
            self._serve(request_id, request, primary_index, root)
        )
        record.cpu_busy_seconds += busy

        # -- replicate writes to R-1 secondaries in parallel ---------------
        if request.op == WRITE and self.spec.replication > 1:
            replicas = []
            for offset in range(1, self.spec.replication):
                index = (primary_index + offset) % self.spec.chunkservers
                replicas.append(
                    env.process(self._serve(request_id, request, index, root))
                )
            results = yield AllOf(env, replicas)
            record.extra["replica_cpu_busy"] = sum(results.values())

        record.completion_time = env.now
        tracer.end_span(root, env.now)
        tracer.record_request(record)
        return record

    def striped_read(self, request: GfsRequest, stripe_width: int):
        """Process generator: read one object striped over ``stripe_width``
        chunkservers, responses converging on the client's link.

        This is the synchronized-fan-in pattern behind the TCP incast
        problem (§5: "the model can replicate effects like the TCP/IP
        incast problem, or other events involving multiple machines
        servicing the same request"): all stripes complete at similar
        times and their responses serialize on the single client NIC.
        Returns the completed :class:`RequestRecord`.
        """
        if request.op != READ:
            raise ValueError("striped requests are reads")
        if not 1 <= stripe_width <= self.spec.chunkservers:
            raise ValueError(
                f"stripe width {stripe_width} must be in "
                f"[1, {self.spec.chunkservers}]"
            )
        env = self.env
        tracer = self.tracer
        request_id = tracer.new_request_id()
        primary_index = self.place(request.lbn)
        record = RequestRecord(
            request_id=request_id,
            request_class=request.request_class,
            server=self.chunkservers[primary_index].name,
            arrival_time=env.now,
            network_bytes=request.size_bytes,
            memory_bytes=request.memory_bytes,
            memory_op=request.memory_op,
            storage_bytes=request.size_bytes,
            storage_op=request.op,
        )
        root = tracer.start_span(request_id, "request", "client", env.now)
        stripe_bytes = max(1, request.size_bytes // stripe_width)

        def stripe(index: int, offset: int):
            sub = GfsRequest(
                request_class=request.request_class,
                op=READ,
                size_bytes=stripe_bytes,
                lbn=request.lbn + offset,
                memory_bytes=max(1, request.memory_bytes // stripe_width),
                memory_op=request.memory_op,
            )
            busy = yield env.process(self._serve(request_id, sub, index, root))
            # The response crosses the client's (shared) downlink.
            span = tracer.start_span(
                request_id, "client_rx", "client", env.now, root
            )
            yield env.process(
                self.client.nic.transfer(request_id, stripe_bytes, "rx")
            )
            tracer.end_span(span, env.now)
            return busy

        stripes = []
        blocks_per_stripe = max(1, -(-stripe_bytes // 4096))
        for i in range(stripe_width):
            index = (primary_index + i) % self.spec.chunkservers
            stripes.append(
                env.process(stripe(index, i * blocks_per_stripe))
            )
        results = yield AllOf(env, stripes)
        record.cpu_busy_seconds = sum(results.values())
        record.completion_time = env.now
        tracer.end_span(root, env.now)
        tracer.record_request(record)
        return record

    def _serve(self, request_id: int, request: GfsRequest, server_index: int, root):
        """Process generator: one chunkserver's part of a request.

        Returns CPU busy seconds consumed on this server.
        """
        env = self.env
        tracer = self.tracer
        spec = self.spec
        machine = self.chunkservers[server_index]
        cpu_busy = 0.0

        # 1. Network receive: writes carry the data in, reads a header.
        rx_bytes = request.size_bytes if request.op == WRITE else HEADER_BYTES
        span = tracer.start_span(request_id, "network_rx", machine.name, env.now, root)
        yield env.process(machine.nic.transfer(request_id, rx_bytes, "rx"))
        tracer.end_span(span, env.now)

        # 2. CPU: locate the chunk, verify the handle.
        span = tracer.start_span(request_id, "cpu_lookup", machine.name, env.now, root)
        busy = yield env.process(
            machine.cpu.compute(request_id, spec.lookup_work, "lookup")
        )
        cpu_busy += busy
        tracer.end_span(span, env.now)

        # 3. Memory: metadata + buffer traffic.
        address = self._allocate_buffer(server_index, request.memory_bytes)
        span = tracer.start_span(request_id, "memory", machine.name, env.now, root)
        yield env.process(
            machine.memory.access(
                request_id, address, request.memory_bytes, request.memory_op
            )
        )
        tracer.end_span(span, env.now)

        # 4. Storage: the I/O, split at the chunkserver's max I/O size.
        span = tracer.start_span(request_id, "storage", machine.name, env.now, root)
        remaining = request.size_bytes
        lbn = request.lbn
        block = machine.disk.model.spec.block_size
        while remaining > 0:
            size = min(remaining, spec.max_io_bytes)
            yield env.process(machine.disk.io(request_id, lbn, size, request.op))
            lbn += -(-size // block)
            remaining -= size
        tracer.end_span(span, env.now)

        # 5. CPU: aggregate/checksum the data.
        byte_work = (
            spec.read_byte_work if request.op == READ else spec.write_byte_work
        )
        work = spec.ack_work + byte_work * request.size_bytes
        span = tracer.start_span(
            request_id, "cpu_aggregate", machine.name, env.now, root
        )
        busy = yield env.process(machine.cpu.compute(request_id, work, "aggregate"))
        cpu_busy += busy
        tracer.end_span(span, env.now)

        # 6. Network transmit: reads carry the data out, writes an ack.
        tx_bytes = request.size_bytes if request.op == READ else HEADER_BYTES
        span = tracer.start_span(request_id, "network_tx", machine.name, env.now, root)
        yield env.process(machine.nic.transfer(request_id, tx_bytes, "tx"))
        tracer.end_span(span, env.now)

        return cpu_busy
