"""One-pass streaming analysis over trace sources, sharded in parallel.

The streaming counterpart of ``WorkloadProfile.from_traces`` and
``compare_workloads``: each worker folds ONE shard's records through
the mergeable accumulators (:class:`~repro.core.WorkloadProfileBuilder`
for characterization, :class:`~repro.core.WorkloadFeatureStats` for
validation), and the driver merges the per-shard accumulators in
shard-index order.  The stitched merged ``TraceSet`` is never
constructed — the property the forbid-stitch tests pin down — and no
worker ever holds more than one shard's records.

Shard records are shifted by the manifest-derived
:class:`~repro.store.stitch.StitchOffsets` before folding, so every
accumulator sees exactly the timestamps and identifiers the merged
timeline would carry.  Feature extraction is per-shard-exact because a
request's records never span shards (each shard is one replica's
complete run); the only cross-shard quantity, the storage seek seam,
is handled inside the seam-aware accumulators.

Per-class validation replays each request class's model with a
deterministic per-class RNG stream (:func:`class_rng`), compares each
class against the streamed original statistics, and additionally
reports the cross-class mix: the union of all per-class synthetics
against the whole original workload.

``repro.core`` is imported lazily inside functions: the core package
pulls in :mod:`repro.datacenter`, whose fleet module imports this
package — a module-level import here would close that cycle.
"""

from __future__ import annotations

import time
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Optional

import numpy as np

from ..simulation import run_sharded
from ..tracing import TraceSource
from ..tracing.store import STREAM_TYPES
from .cache import (
    analysis_key,
    load_analysis_cache,
    save_analysis_cache,
    shard_content_hash,
)
from .shards import ShardStore, _shift, shifter_for  # noqa: F401  (_shift: API)
from .stitch import StitchOffsets

if TYPE_CHECKING:  # pragma: no cover - type-only imports
    from ..core import (
        ValidationReport,
        WorkloadFeatureStats,
        WorkloadProfile,
        WorkloadProfileBuilder,
    )

__all__ = [
    "ClassReport",
    "PerClassValidation",
    "ShardAnalysisTask",
    "SourceAnalysis",
    "analyze_shard",
    "analyze_source",
    "characterize_source",
    "class_rng",
    "class_seed",
    "validate_per_class",
]


def class_seed(seed: int, request_class: str) -> int:
    """A deterministic 31-bit seed derived from a class name.

    Used for the replay harness of one class's synthetic requests, so
    per-class validation is reproducible and classes never share an
    RNG stream regardless of iteration order.
    """
    return (seed * 1000003 + zlib.crc32(request_class.encode())) % (2**31)


def class_rng(seed: int, request_class: str) -> np.random.Generator:
    """The RNG stream used to synthesize one class's requests.

    Seeded with ``[seed, crc32(class)]`` so streams are independent
    across classes and across base seeds — and reproducible by tests
    that re-derive the same generator.
    """
    return np.random.default_rng([seed, zlib.crc32(request_class.encode())])


@dataclass(frozen=True)
class ShardAnalysisTask:
    """One worker's share: fold one shard through the accumulators."""

    directory: str
    shard_index: int
    offsets: StitchOffsets
    window: float = 0.25
    cores: int = 8
    max_quantile_values: Optional[int] = None


#: Columns each analysis stream fold actually consumes — the union of
#: what ``WorkloadProfileBuilder.update_batch`` and
#: ``request_feature_columns`` read.  Columnar shards open only these
#: ``.bin`` files; jsonl shards decode once and pivot to the same
#: subset.  The two ``json`` columns (``extra``, ``annotations``) are
#: never requested: no analysis statistic consumes them.
_ANALYSIS_COLUMNS = {
    "network": ("request_id", "server", "timestamp", "size_bytes", "direction"),
    "cpu": ("request_id", "server", "timestamp", "busy_seconds", "phase"),
    "memory": ("request_id", "timestamp", "size_bytes", "op"),
    "storage": ("request_id", "timestamp", "lbn", "size_bytes", "op", "queue_depth"),
    "requests": ("request_id", "request_class", "arrival_time", "completion_time"),
    "spans": ("start", "end"),
}


def analyze_shard(task: ShardAnalysisTask):
    """Worker entry point: accumulate one shard, return the accumulators.

    Returns ``(profile_builder, feature_stats, per_class_stats)``.

    Both codecs fold through one code path: each stream is loaded as
    full column arrays (columnar shards serve their buffers directly,
    jsonl shards decode once and pivot), shifted in column space by the
    manifest-derived stitch offsets, and folded through the vectorized
    ``update_batch`` accumulators — so per-record Python dispatch never
    runs on this hot path, and analyses over the two codecs are
    byte-identical because they see the identical arrays.
    """
    from ..core import (
        WorkloadFeatureStats,
        WorkloadProfileBuilder,
        request_feature_columns,
    )
    from ..tracing.columnar import columns_from_records, shift_columns, take_columns

    store = ShardStore(task.directory)
    manifest = next(
        m for m in store.manifests if m.index == task.shard_index
    )
    builder = WorkloadProfileBuilder(
        window=task.window,
        cores=task.cores,
        max_quantile_values=task.max_quantile_values,
    )
    offsets = task.offsets
    shard_columns: dict[str, dict] = {}
    for stream in STREAM_TYPES:
        names = list(_ANALYSIS_COLUMNS[stream])
        cols = store.load_shard_stream_columns(manifest, stream, names)
        if cols is None:  # empty stream: fold zero-length columns
            cols = columns_from_records(stream, [], names)
        cols = shift_columns(
            stream,
            cols,
            time_offset=offsets.time,
            request_id_offset=offsets.request_id,
            span_id_offset=offsets.span_id,
        )
        builder.update_batch(stream, cols)
        if stream != "spans":  # spans carry no request features
            shard_columns[stream] = cols
    features = request_feature_columns(shard_columns)
    overall = WorkloadFeatureStats.from_feature_columns(features)
    per_class: dict[str, WorkloadFeatureStats] = {}
    klass = features["request_class"]
    for code, name in enumerate(klass.values):
        mask = klass.codes == code
        if mask.any():
            per_class[name] = WorkloadFeatureStats.from_feature_columns(
                take_columns(features, mask)
            )
    return builder, overall, per_class


@dataclass
class SourceAnalysis:
    """Everything one streaming pass over a source produces."""

    profile: "WorkloadProfile"
    features: "WorkloadFeatureStats"
    per_class: dict[str, "WorkloadFeatureStats"]
    workers: int = 1
    elapsed_seconds: float = 0.0
    #: Shards restored from the persistent cache / re-folded by workers.
    #: Both stay 0 when caching is off or the source is not a store.
    cache_hits: int = 0
    cache_misses: int = 0


def analyze_source(
    source: TraceSource | str | Path,
    window: float = 0.25,
    cores: int = 8,
    workers: int = 1,
    cache: bool = False,
    max_quantile_values: Optional[int] = None,
) -> SourceAnalysis:
    """One streaming pass: profile + validation statistics for a source.

    A :class:`~repro.store.ShardStore` (or a path to one) fans one
    worker per shard and merges the per-shard accumulators in
    shard-index order — numerically equal to the single-pass fold for
    any worker count.  Any other :class:`~repro.tracing.TraceSource`
    is folded inline.

    With ``cache=True`` (stores only) each shard's folded accumulator
    state is persisted under ``<store>/_cache/<shard>/`` keyed by the
    shard's content hash, its stitch offsets, the accumulator schema
    version and the analysis parameters; matching entries are restored
    instead of re-reading the shard, so re-analysis after an append
    spawns workers only for the new round.  Cached and fresh results
    are merged in shard-index order, and JSON snapshots round-trip
    floats exactly, so the warm result equals the cold one.

    ``max_quantile_values`` bounds every exact-quantile buffer (see
    :class:`~repro.stats.ExactQuantiles`); it participates in the cache
    key.
    """
    from ..core import WorkloadFeatureStats, WorkloadProfileBuilder

    if isinstance(source, (str, Path)):
        from ..tracing import load_traces

        source = load_traces(source)
    start = time.perf_counter()
    cache_hits = cache_misses = 0
    if isinstance(source, ShardStore):
        key = analysis_key(
            "profile",
            {
                "window": window,
                "cores": cores,
                "max_quantile_values": max_quantile_values,
            },
        )
        cached: dict[int, tuple] = {}
        pending: list[tuple] = []  # (manifest, offsets, content_hash)
        for manifest, offsets in zip(source.manifests, source.offsets()):
            if not cache:
                pending.append((manifest, offsets, None))
                continue
            shard_dir = source.shard_dir(manifest)
            content_hash = shard_content_hash(shard_dir)
            entry = load_analysis_cache(
                source.directory,
                shard_dir.name,
                key,
                content_hash,
                offsets,
                codec=manifest.codec,
            )
            if entry is not None:
                cached[manifest.index] = entry
                cache_hits += 1
            else:
                pending.append((manifest, offsets, content_hash))
                cache_misses += 1
        tasks = [
            ShardAnalysisTask(
                str(source.directory),
                manifest.index,
                offsets,
                window,
                cores,
                max_quantile_values,
            )
            for manifest, offsets, _ in pending
        ]
        results = run_sharded(analyze_shard, tasks, workers)
        fresh: dict[int, tuple] = {}
        for (manifest, offsets, content_hash), result in zip(pending, results):
            fresh[manifest.index] = result
            if cache:
                shard_builder, shard_features, shard_classes = result
                save_analysis_cache(
                    source.directory,
                    source.shard_dir(manifest).name,
                    key,
                    content_hash,
                    offsets,
                    shard_builder,
                    shard_features,
                    shard_classes,
                    compress=manifest.compress,
                    codec=manifest.codec,
                )
        builder = WorkloadProfileBuilder(
            window=window, cores=cores, max_quantile_values=max_quantile_values
        )
        features = WorkloadFeatureStats()
        per_class: dict[str, WorkloadFeatureStats] = {}
        for manifest in source.manifests:
            shard_builder, shard_features, shard_classes = (
                cached[manifest.index]
                if manifest.index in cached
                else fresh[manifest.index]
            )
            builder.merge(shard_builder)
            features.merge(shard_features)
            for cls, stats in shard_classes.items():
                if cls in per_class:
                    per_class[cls].merge(stats)
                else:
                    per_class[cls] = stats
    else:
        from ..core import extract_request_features

        builder = WorkloadProfileBuilder(
            window=window, cores=cores, max_quantile_values=max_quantile_values
        )
        builder.add_source(source)
        feats = extract_request_features(source)
        features = WorkloadFeatureStats.from_features(feats)
        per_class = {}
        for f in feats:
            if f.request_class not in per_class:
                per_class[f.request_class] = WorkloadFeatureStats()
            per_class[f.request_class].add(f)
    elapsed = time.perf_counter() - start
    return SourceAnalysis(
        profile=builder.profile(),
        features=features,
        per_class=dict(sorted(per_class.items())),
        workers=workers,
        elapsed_seconds=elapsed,
        cache_hits=cache_hits,
        cache_misses=cache_misses,
    )


def characterize_source(
    source: TraceSource | str | Path,
    window: float = 0.25,
    cores: int = 8,
    workers: int = 1,
    cache: bool = False,
    max_quantile_values: Optional[int] = None,
) -> "WorkloadProfile":
    """Streaming characterization of any trace source.

    Equal to ``WorkloadProfile.from_traces`` on the materialized merge
    (see ``docs/streaming_analysis.md`` for the tolerance contract)
    without ever building it.  ``cache=True`` enables the persistent
    per-shard cache for store sources (see :func:`analyze_source`).
    """
    return analyze_source(
        source,
        window=window,
        cores=cores,
        workers=workers,
        cache=cache,
        max_quantile_values=max_quantile_values,
    ).profile


@dataclass
class ClassReport:
    """Per-class Table-2 outcome (or why the class was skipped)."""

    request_class: str
    n_original: int
    n_synthetic: int = 0
    report: Optional["ValidationReport"] = None
    error: Optional[str] = None


@dataclass
class PerClassValidation:
    """Per-class replay validation plus the cross-class mix."""

    classes: list[ClassReport] = field(default_factory=list)
    #: The union of all per-class synthetics vs the whole original
    #: workload — the joint fidelity a mixed deployment would see.
    mix: Optional["ValidationReport"] = None
    workers: int = 1
    elapsed_seconds: float = 0.0
    #: Analysis-cache outcome of the underlying streaming pass (both 0
    #: when caching was off or a precomputed analysis was supplied).
    cache_hits: int = 0
    cache_misses: int = 0

    @property
    def n_validated(self) -> int:
        return sum(1 for c in self.classes if c.report is not None)

    @property
    def worst_feature_deviation_pct(self) -> float:
        worst = [
            c.report.worst_feature_deviation_pct
            for c in self.classes
            if c.report is not None
        ]
        if not worst:
            raise ValueError("no class produced a validation report")
        return max(worst)

    def to_table(self) -> str:
        """One summary row per class, plus the mix row."""
        lines = [
            f"{'class':>16} | {'n(o/s)':>11} | {'feat dev%':>9} | "
            f"{'lat dev%':>8} | {'KS':>6} | {'profiles':>8}"
        ]
        lines.append("-" * len(lines[0]))

        def row(name: str, n_o: int, n_s: int, report) -> str:
            return (
                f"{name:>16} | {n_o:>5}/{n_s:<5} | "
                f"{report.worst_feature_deviation_pct:>9.2f} | "
                f"{report.worst_latency_deviation_pct:>8.2f} | "
                f"{report.latency_ks:>6.3f} | {len(report.profiles):>8}"
            )

        for c in self.classes:
            if c.report is not None:
                lines.append(row(c.request_class, c.n_original, c.n_synthetic, c.report))
            else:
                lines.append(
                    f"{c.request_class:>16} | {c.n_original:>5}/{c.n_synthetic:<5} | "
                    f"skipped: {c.error}"
                )
        if self.mix is not None:
            lines.append(
                row("<mix>", self.mix.n_original, self.mix.n_synthetic, self.mix)
            )
        return "\n".join(lines)


def validate_per_class(
    source: TraceSource | str | Path,
    models: Optional[dict] = None,
    config=None,
    seed: int = 42,
    min_profile_count: int = 5,
    min_requests: int = 16,
    window: float = 0.25,
    cores: int = 8,
    workers: int = 1,
    analysis: Optional[SourceAnalysis] = None,
    cache: bool = False,
    max_quantile_values: Optional[int] = None,
) -> PerClassValidation:
    """Replay each class's model and grade it against the streamed original.

    ``models`` maps request class to a trained
    :class:`~repro.core.KoozaModel`; when omitted, per-class models are
    trained from ``source`` first (fanned over ``workers`` for a shard
    store).  Each class synthesizes as many requests as the original
    side contributed feature vectors, using :func:`class_rng` so the
    result is independent of class iteration order.  Classes whose
    original or synthetic side is too thin are reported as skipped,
    not raised.

    Pass a precomputed ``analysis`` to reuse one streaming pass for
    characterization and validation.  ``cache=True`` enables both the
    per-shard analysis cache and the per-class model cache for store
    sources (see :func:`analyze_source` and
    :func:`repro.store.training.train_per_class`).
    """
    from ..core import ReplayHarness, WorkloadFeatureStats, compare_feature_stats

    start = time.perf_counter()
    if isinstance(source, (str, Path)):
        from ..tracing import load_traces

        source = load_traces(source)
    if analysis is None:
        analysis = analyze_source(
            source,
            window=window,
            cores=cores,
            workers=workers,
            cache=cache,
            max_quantile_values=max_quantile_values,
        )
    if models is None:
        from .training import train_per_class

        fit = train_per_class(
            source,
            config,
            workers=workers,
            min_requests=min_requests,
            cache=cache,
        )
        models = fit.models
    result = PerClassValidation(
        workers=workers,
        cache_hits=analysis.cache_hits,
        cache_misses=analysis.cache_misses,
    )
    synthetic_mix = WorkloadFeatureStats()
    for cls in sorted(analysis.per_class):
        original = analysis.per_class[cls]
        if cls not in models:
            result.classes.append(
                ClassReport(cls, original.n, error="no model for class")
            )
            continue
        synthetic = models[cls].synthesize(original.n, class_rng(seed, cls))
        replayed = ReplayHarness(seed=class_seed(seed + 1, cls)).replay(synthetic)
        stats = WorkloadFeatureStats.from_source(replayed)
        synthetic_mix.merge(stats)
        try:
            report = compare_feature_stats(
                original, stats, min_profile_count=min_profile_count
            )
        except ValueError as error:
            result.classes.append(
                ClassReport(cls, original.n, stats.n, error=str(error))
            )
            continue
        result.classes.append(ClassReport(cls, original.n, stats.n, report))
    if synthetic_mix.n:
        try:
            result.mix = compare_feature_stats(
                analysis.features,
                synthetic_mix,
                min_profile_count=min_profile_count,
            )
        except ValueError:
            result.mix = None
    result.elapsed_seconds = time.perf_counter() - start
    return result
