"""On-disk trace shard store: streaming persistence and stitched merge.

The scaling layer between trace collection and model training.  Fleet
replicas stream records straight to per-shard directories through a
:class:`ShardWriter` (only a :class:`ShardManifest` crosses the process
pool), a :class:`ShardStore` lazily re-reads and stitches the shards
into the same monotonic timeline the in-memory merge produces, and
:func:`train_per_class` fans KOOZA fits over request classes without
trace records ever transiting worker IPC.

Import order note: submodules import only :mod:`repro.tracing` and
:mod:`repro.simulation` at module level; :mod:`repro.core` (which pulls
in :mod:`repro.datacenter`, which imports this package) is deferred to
call time inside :mod:`repro.store.training`.
"""

from .cache import (
    CACHE_DIRNAME,
    analysis_key,
    combine_hashes,
    hash_file,
    load_analysis_cache,
    save_analysis_cache,
    shard_content_hash,
    shard_stream_hashes,
    stream_content_hash,
)
from .convert import convert_flat_dump, convert_store
from .manifest import (
    MANIFEST_FILENAME,
    SHARD_CODECS,
    SHARD_FORMAT,
    SHARD_VERSION,
    STORE_INDEX_FILENAME,
    ShardManifest,
    StoreIndex,
    compact_store,
    load_store_index,
    load_store_rounds,
    parse_shard_index,
    round_filename,
    shard_manifest_paths,
    write_round_file,
)
from .shards import ShardStore, is_shard_store, shifter_for
from .watch import StoreSnapshot, take_snapshot
from .stitch import (
    StitchOffsets,
    accumulate_offsets,
    max_request_id,
    max_span_id,
    offsets_for,
    trace_extent,
)
from .writer import ShardWriter, shard_dirname
from .training import (
    ClassFitTask,
    PerClassFit,
    fit_request_class,
    load_per_class_models,
    save_per_class_models,
    train_per_class,
)
from .analyze import (
    ClassReport,
    PerClassValidation,
    ShardAnalysisTask,
    SourceAnalysis,
    analyze_shard,
    analyze_source,
    characterize_source,
    class_rng,
    class_seed,
    validate_per_class,
)

__all__ = [
    "CACHE_DIRNAME",
    "ClassFitTask",
    "ClassReport",
    "PerClassValidation",
    "ShardAnalysisTask",
    "SourceAnalysis",
    "analyze_shard",
    "analyze_source",
    "characterize_source",
    "class_rng",
    "class_seed",
    "validate_per_class",
    "MANIFEST_FILENAME",
    "PerClassFit",
    "SHARD_CODECS",
    "SHARD_FORMAT",
    "SHARD_VERSION",
    "STORE_INDEX_FILENAME",
    "ShardManifest",
    "ShardStore",
    "ShardWriter",
    "StitchOffsets",
    "StoreIndex",
    "StoreSnapshot",
    "accumulate_offsets",
    "analysis_key",
    "combine_hashes",
    "compact_store",
    "convert_flat_dump",
    "convert_store",
    "fit_request_class",
    "hash_file",
    "is_shard_store",
    "load_analysis_cache",
    "load_per_class_models",
    "load_store_index",
    "load_store_rounds",
    "max_request_id",
    "max_span_id",
    "offsets_for",
    "parse_shard_index",
    "round_filename",
    "save_analysis_cache",
    "save_per_class_models",
    "shard_content_hash",
    "shard_dirname",
    "shard_manifest_paths",
    "shard_stream_hashes",
    "shifter_for",
    "stream_content_hash",
    "take_snapshot",
    "trace_extent",
    "train_per_class",
    "write_round_file",
]
