"""On-disk trace shard store: streaming persistence and stitched merge.

The scaling layer between trace collection and model training.  Fleet
replicas stream records straight to per-shard directories through a
:class:`ShardWriter` (only a :class:`ShardManifest` crosses the process
pool), a :class:`ShardStore` lazily re-reads and stitches the shards
into the same monotonic timeline the in-memory merge produces, and
:func:`train_per_class` fans KOOZA fits over request classes without
trace records ever transiting worker IPC.

Import order note: submodules import only :mod:`repro.tracing` and
:mod:`repro.simulation` at module level; :mod:`repro.core` (which pulls
in :mod:`repro.datacenter`, which imports this package) is deferred to
call time inside :mod:`repro.store.training`.
"""

from .manifest import MANIFEST_FILENAME, SHARD_FORMAT, SHARD_VERSION, ShardManifest
from .shards import ShardStore, is_shard_store
from .stitch import (
    StitchOffsets,
    accumulate_offsets,
    max_request_id,
    max_span_id,
    offsets_for,
    trace_extent,
)
from .writer import ShardWriter, shard_dirname
from .training import (
    ClassFitTask,
    PerClassFit,
    fit_request_class,
    load_per_class_models,
    save_per_class_models,
    train_per_class,
)
from .analyze import (
    ClassReport,
    PerClassValidation,
    ShardAnalysisTask,
    SourceAnalysis,
    analyze_shard,
    analyze_source,
    characterize_source,
    class_rng,
    class_seed,
    validate_per_class,
)

__all__ = [
    "ClassFitTask",
    "ClassReport",
    "PerClassValidation",
    "ShardAnalysisTask",
    "SourceAnalysis",
    "analyze_shard",
    "analyze_source",
    "characterize_source",
    "class_rng",
    "class_seed",
    "validate_per_class",
    "MANIFEST_FILENAME",
    "PerClassFit",
    "SHARD_FORMAT",
    "SHARD_VERSION",
    "ShardManifest",
    "ShardStore",
    "ShardWriter",
    "StitchOffsets",
    "accumulate_offsets",
    "fit_request_class",
    "is_shard_store",
    "load_per_class_models",
    "max_request_id",
    "max_span_id",
    "offsets_for",
    "save_per_class_models",
    "shard_dirname",
    "trace_extent",
    "train_per_class",
]
