"""Watch hooks: consistent snapshots of a store that is still growing.

A live store is racy in two ways a batch reader never sees:

* **Shard completeness.**  Fleet workers create their shard directory
  the moment they start and write ``manifest.json`` only at finalize
  (atomically, via rename).  A readable manifest therefore *is* the
  completeness signal — a ``shard-*`` directory without one is a shard
  still being written.
* **Prefix contiguity.**  Stitch offsets are cumulative: shard *i*'s
  placement on the merged timeline depends on every shard below *i*.
  Parallel workers finish out of order, so shard 3 may be complete
  while shard 2 is still streaming.  Folding shard 3 early would pin
  it to wrong offsets, so a snapshot only exposes the longest
  *contiguous* complete prefix starting at index 0; later complete
  shards are reported as ``pending`` and become visible once the gap
  closes.

With ``complete_rounds_only`` the visibility unit is coarsened from
shards to rounds: a shard is only exposed once its collection round's
``round-<n>.json`` (or a compacted ``index.json``) lists it, which the
collectors write only after *every* shard of the round finalized.
That is the daemon's default — the resident profile then moves in
whole-round steps instead of churning mid-append.  Stores that predate
round files have no round records at all; every complete shard is
visible there.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Optional

from .manifest import (
    ShardManifest,
    load_store_index,
    load_store_rounds,
    parse_shard_index,
)
from .stitch import StitchOffsets, offsets_for

__all__ = ["StoreSnapshot", "take_snapshot"]


@dataclass(frozen=True)
class StoreSnapshot:
    """One consistent view of a growing store: the foldable prefix.

    ``manifests`` is the contiguous complete prefix in index order
    (``manifests[i].index == i``) with ``offsets[i]`` its stitch
    offsets; ``pending`` lists shard indices that exist beyond the
    prefix but are not yet foldable (incomplete, behind a gap, or
    waiting for their round record).
    """

    directory: Path
    manifests: tuple[ShardManifest, ...]
    offsets: tuple[StitchOffsets, ...]
    #: Shard directory per prefix entry (pad width varies across eras).
    dirs: tuple[Path, ...]
    pending: tuple[int, ...]

    @property
    def n_shards(self) -> int:
        return len(self.manifests)

    @property
    def n_records(self) -> int:
        return sum(m.n_records for m in self.manifests)

    @property
    def max_round(self) -> int:
        return max((m.round for m in self.manifests), default=-1)


def _load_manifest(shard_dir: Path) -> Optional[ShardManifest]:
    """The shard's manifest, or None while it is incomplete/unreadable."""
    try:
        return ShardManifest.load(shard_dir)
    except FileNotFoundError:
        return None
    except (OSError, ValueError, TypeError, json.JSONDecodeError):
        # A torn or foreign manifest reads the same as an absent one:
        # the shard is not foldable yet.  (Writers rename manifests into
        # place, so torn reads only happen on non-atomic filesystems.)
        return None


def _recorded_shards(directory: Path) -> Optional[frozenset[int]]:
    """Shard indices listed by round files / the compacted index.

    ``None`` when the store has no round records at all (legacy
    single-round store) — round gating does not apply there.
    """
    recorded: set[int] = set()
    seen_any = False
    index = load_store_index(directory)
    if index is not None:
        seen_any = True
        for shards in index.rounds.values():
            recorded.update(shards)
    try:
        rounds = load_store_rounds(directory)
    except (OSError, ValueError, json.JSONDecodeError):
        rounds = {}
    if rounds:
        seen_any = True
        for shards in rounds.values():
            recorded.update(shards)
    return frozenset(recorded) if seen_any else None


def take_snapshot(
    directory: str | Path, complete_rounds_only: bool = False
) -> StoreSnapshot:
    """Snapshot the foldable contiguous prefix of a (growing) store."""
    directory = Path(directory)
    dirs: dict[int, Path] = {}
    for path in directory.glob("shard-*"):
        index = parse_shard_index(path.name)
        if index is not None and path.is_dir():
            dirs[index] = path
    visible = _recorded_shards(directory) if complete_rounds_only else None

    loaded: dict[int, Optional[ShardManifest]] = {}
    for index, path in dirs.items():
        manifest = _load_manifest(path)
        if manifest is not None and visible is not None and index not in visible:
            manifest = None  # complete but its round record isn't written yet
        loaded[index] = manifest

    manifests: list[ShardManifest] = []
    while loaded.get(len(manifests)) is not None:
        manifests.append(loaded[len(manifests)])  # type: ignore[arg-type]
    pending = tuple(
        index
        for index in sorted(dirs)
        if index >= len(manifests) and loaded[index] is not None
    )
    offsets = offsets_for([m.stitch_part() for m in manifests])
    return StoreSnapshot(
        directory=directory,
        manifests=tuple(manifests),
        offsets=tuple(offsets),
        dirs=tuple(dirs[m.index] for m in manifests),
        pending=pending,
    )
