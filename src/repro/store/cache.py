"""Persistent per-shard analysis caches with content-hash invalidation.

The memoization layer behind incremental re-analysis: after a worker
folds one shard through the streaming accumulators, its composite
state (``WorkloadProfileBuilder`` + ``WorkloadFeatureStats`` + the
per-class split) is persisted beside the store::

    store/
      _cache/
        shard-00000/
          profile-<key>.json[.gz]
        models/
          <class>-<key>.json

On the next analysis the driver folds cached states for unchanged
shards and spawns workers only for new or invalidated ones — appending
one round to a 50-round store re-reads one round.

A cache entry is valid only if **all** of the following match:

* the file parses and carries this module's format/version markers;
* ``schema`` equals :data:`~repro.stats.STREAMING_STATE_VERSION` (an
  accumulator-layout bump invalidates every older cache);
* ``content_hash`` equals the sha256 digest of the shard's current
  stream-file bytes (editing a shard invalidates exactly that shard);
* ``offsets`` equal the shard's current stitch offsets (cached
  accumulator state embeds *shifted* timestamps and identifiers, so a
  shard whose predecessors changed must be re-folded even if its own
  bytes did not — appends never move prior shards, edits might);
* the analysis key — a digest of the analysis parameters — matches,
  which is implicit in the filename.

Any mismatch or corruption makes ``load_analysis_cache`` return
``None``; stale or damaged caches are skipped, never crashed on.
Writes go through a temp file + ``os.replace`` so a reader can never
observe a half-written entry.
"""

from __future__ import annotations

import gzip
import hashlib
import json
import os
from pathlib import Path
from typing import Any, Mapping, Optional

from ..snapshot import SNAPSHOT_VERSION as STREAMING_STATE_VERSION
from ..tracing.columnar import columnar_stream_files, find_columnar_stream
from ..tracing.store import _CanonicalGzipFile, find_stream_file
from .stitch import StitchOffsets

__all__ = [
    "CACHE_DIRNAME",
    "CACHE_FORMAT",
    "CACHE_VERSION",
    "analysis_key",
    "combine_hashes",
    "hash_file",
    "load_analysis_cache",
    "load_model_cache",
    "model_cache_path",
    "save_analysis_cache",
    "save_model_cache",
    "shard_content_hash",
    "shard_stream_hashes",
    "stream_content_hash",
]

CACHE_DIRNAME = "_cache"
CACHE_FORMAT = "repro-analysis-cache"
#: Version 2: vectorized batch folds changed the floating-point
#: association of moment accumulators, and entries carry the shard's
#: codec — older entries must be recomputed, not reused.
CACHE_VERSION = 2
MODEL_CACHE_FORMAT = "repro-model-cache"


# -- content hashing ----------------------------------------------------------


def hash_file(path: str | Path, chunk_size: int = 1 << 20) -> str:
    """sha256 hex digest of a file's raw bytes (compressed as stored)."""
    digest = hashlib.sha256()
    with open(path, "rb") as fh:
        while True:
            chunk = fh.read(chunk_size)
            if not chunk:
                break
            digest.update(chunk)
    return digest.hexdigest()


def stream_content_hash(directory: str | Path, stream: str) -> Optional[str]:
    """Content digest of one stream, whichever codec stores it.

    A jsonl stream hashes its single ``.jsonl[.gz]`` file directly
    (unchanged from the historical digest, so pre-codec manifests still
    verify); a columnar stream combines the digests of its header and
    per-column buffers.  ``None`` when the stream has no files.
    """
    path = find_stream_file(directory, stream)
    if path is not None:
        return hash_file(path)
    if find_columnar_stream(directory, stream) is not None:
        return combine_hashes(
            {f.name: hash_file(f) for f in columnar_stream_files(directory, stream)}
        )
    return None


def shard_stream_hashes(shard_dir: str | Path) -> dict[str, str]:
    """Per-stream sha256 of every stream file in a shard directory.

    Hashing is an order of magnitude cheaper than JSON-decoding the
    same bytes, which is what makes hash-checked cache hits a win.
    Streams stored columnar digest their header + column buffers
    through :func:`stream_content_hash`.
    """
    shard_dir = Path(shard_dir)
    hashes: dict[str, str] = {}
    streams = set()
    for pattern in ("*.jsonl", "*.jsonl.gz", "*.columns.json"):
        for path in shard_dir.glob(pattern):
            streams.add(path.name.split(".", 1)[0])
    for stream in sorted(streams):
        digest = stream_content_hash(shard_dir, stream)
        if digest is not None:
            hashes[stream] = digest
    return hashes


def combine_hashes(hashes: Mapping[str, str]) -> str:
    """One digest over a stream-name -> hash map (order-independent)."""
    digest = hashlib.sha256()
    for stream, value in sorted(hashes.items()):
        digest.update(f"{stream}:{value}\n".encode())
    return digest.hexdigest()


def shard_content_hash(shard_dir: str | Path) -> str:
    """Combined content digest of one shard's current stream files."""
    return combine_hashes(shard_stream_hashes(shard_dir))


# -- cache keys ---------------------------------------------------------------


def analysis_key(prefix: str, params: Mapping[str, Any]) -> str:
    """Filename-safe cache key for one analysis parameterization.

    Embeds the accumulator schema version and the cache format version,
    so bumping either retires old entries by never looking at them.
    """
    payload = json.dumps(
        {
            "schema": STREAMING_STATE_VERSION,
            "cache": CACHE_VERSION,
            "params": dict(params),
        },
        sort_keys=True,
        default=str,
    )
    return f"{prefix}-{hashlib.sha256(payload.encode()).hexdigest()[:16]}"


def _entry_path(
    store_dir: str | Path, shard_dirname: str, key: str
) -> tuple[Path, Path]:
    base = Path(store_dir) / CACHE_DIRNAME / shard_dirname
    return base / f"{key}.json", base / f"{key}.json.gz"


def _read_json(plain: Path, gzipped: Path) -> Optional[dict]:
    try:
        if plain.exists():
            return json.loads(plain.read_text())
        if gzipped.exists():
            with gzip.open(gzipped, "rt", encoding="utf-8") as fh:
                return json.load(fh)
    except (OSError, ValueError):
        return None  # unreadable or corrupt: treat as a miss
    return None


def _write_json(path: Path, data: dict, compress: bool) -> Path:
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(path.name + ".tmp")
    text = json.dumps(data, sort_keys=True)
    if compress:
        # Canonical gzip header (mtime=0, no embedded filename):
        # identical payloads produce byte-identical cache files, so
        # re-running an analysis never dirties an unchanged store.
        import io

        with io.TextIOWrapper(
            _CanonicalGzipFile(tmp), encoding="utf-8"
        ) as fh:
            fh.write(text)
    else:
        tmp.write_text(text)
    os.replace(tmp, path)
    return path


# -- per-shard analysis entries ----------------------------------------------


def save_analysis_cache(
    store_dir: str | Path,
    shard_dirname: str,
    key: str,
    content_hash: str,
    offsets: StitchOffsets,
    builder,
    features,
    per_class: Mapping[str, Any],
    compress: bool = False,
    codec: str = "jsonl",
) -> Path:
    """Persist one shard's folded accumulator states beside the store."""
    plain, gzipped = _entry_path(store_dir, shard_dirname, key)
    data = {
        "format": CACHE_FORMAT,
        "version": CACHE_VERSION,
        "schema": STREAMING_STATE_VERSION,
        "codec": codec,
        "content_hash": content_hash,
        "offsets": [offsets.time, offsets.request_id, offsets.span_id],
        "builder": builder.state(),
        "features": features.state(),
        "per_class": [
            [cls, stats.state()] for cls, stats in sorted(per_class.items())
        ],
    }
    return _write_json(gzipped if compress else plain, data, compress)


def load_analysis_cache(
    store_dir: str | Path,
    shard_dirname: str,
    key: str,
    content_hash: str,
    offsets: StitchOffsets,
    codec: str = "jsonl",
):
    """Restore one shard's cached fold, or ``None`` if it cannot be used.

    Returns ``(builder, features, per_class)`` on a hit.  Every
    validity rule from the module docstring is enforced here; failures
    of any kind — including snapshot-layer ``ValueError`` on a stale
    schema — are treated as a miss, never raised.  ``codec`` must match
    the shard's manifest codec: converting a shard between codecs
    changes its bytes anyway, but the explicit check keeps the cache
    key honest even if a future codec hashed to the same digest.
    """
    from ..core import WorkloadFeatureStats, WorkloadProfileBuilder

    data = _read_json(*_entry_path(store_dir, shard_dirname, key))
    if not isinstance(data, dict):
        return None
    if data.get("format") != CACHE_FORMAT or data.get("version") != CACHE_VERSION:
        return None
    if data.get("schema") != STREAMING_STATE_VERSION:
        return None
    if data.get("codec") != codec:
        return None
    if data.get("content_hash") != content_hash:
        return None
    if data.get("offsets") != [offsets.time, offsets.request_id, offsets.span_id]:
        return None
    try:
        builder = WorkloadProfileBuilder.from_state(data["builder"])
        features = WorkloadFeatureStats.from_state(data["features"])
        per_class = {
            str(cls): WorkloadFeatureStats.from_state(state)
            for cls, state in data["per_class"]
        }
    except (KeyError, TypeError, ValueError):
        return None
    return builder, features, per_class


# -- per-class model entries --------------------------------------------------


def _safe_name(name: str) -> str:
    return "".join(c if c.isalnum() or c in "-_." else "_" for c in name)


def model_cache_path(
    store_dir: str | Path, request_class: str, store_hash: str, config_digest: str
) -> Path:
    """Location of one class's cached model fit.

    The key digests the store-wide content hash, the class name and the
    training configuration: a whole-model cache (fits are not
    incrementally mergeable), valid only while no shard changes.
    """
    payload = f"{store_hash}\n{request_class}\n{config_digest}"
    digest = hashlib.sha256(payload.encode()).hexdigest()[:16]
    return (
        Path(store_dir)
        / CACHE_DIRNAME
        / "models"
        / f"{_safe_name(request_class)}-{digest}.json"
    )


def save_model_cache(path: Path, request_class: str, model_dict: dict) -> Path:
    return _write_json(
        path,
        {
            "format": MODEL_CACHE_FORMAT,
            "version": CACHE_VERSION,
            "class": request_class,
            "model": model_dict,
        },
        compress=False,
    )


def load_model_cache(path: Path, request_class: str) -> Optional[dict]:
    """The cached ``model_to_dict`` payload, or ``None`` on any mismatch."""
    data = _read_json(path, path)
    if not isinstance(data, dict):
        return None
    if (
        data.get("format") != MODEL_CACHE_FORMAT
        or data.get("version") != CACHE_VERSION
        or data.get("class") != request_class
        or not isinstance(data.get("model"), dict)
    ):
        return None
    return data["model"]
