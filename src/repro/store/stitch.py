"""Shared stitch arithmetic for merging independent trace timelines.

Both merge paths — the in-memory :func:`repro.datacenter.fleet.merge_replicas`
and the on-disk :class:`repro.store.ShardStore` — must lay replicas out
end-to-end with *identical* offsets, or the acceptance contract (merged
traces byte-identical regardless of where they were stitched) breaks.
This module is the single source of truth for that arithmetic: how far
a replica extends in time, how far its identifiers reach, and how the
per-replica offsets accumulate.

Extent semantics (tightened from the original fleet-internal helper):

* all subsystem record timestamps count;
* request *arrival* times count as well as completion times — a replica
  whose requests never completed (``completion_time == 0.0``) used to
  collapse to a zero extent and let the next replica's records
  interleave before its arrivals;
* span starts and *finite* span ends count (an unfinished span's NaN
  end is ignored rather than poisoning the max), as do annotation
  timestamps;
* the replica's reported simulated ``duration`` is a floor, so an empty
  replica with a known positive duration still occupies its slot on the
  merged timeline instead of collapsing the monotonic time offset.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Optional, Sequence

from ..tracing import TraceSet, TraceSource

__all__ = [
    "StitchOffsets",
    "accumulate_offsets",
    "max_request_id",
    "max_span_id",
    "offsets_for",
    "total_extent",
    "trace_extent",
]


def trace_extent(traces: TraceSet, duration: float = 0.0) -> float:
    """The time span a replica occupies on a merged timeline.

    Delegates to :meth:`TraceSet.extent` (the ``TraceSource`` protocol
    method) and folds in the simulated ``duration``, so empty replicas
    still occupy their simulated span.
    """
    return max(duration, 0.0, traces.extent())


def max_request_id(traces: "TraceSource") -> int:
    """The largest request id any record in ``traces`` refers to."""
    largest = 0
    for stream in ("network", "cpu", "memory", "storage", "requests"):
        for record in traces.iter_records(stream):
            largest = max(largest, record.request_id)
    for span in traces.iter_records("spans"):
        largest = max(largest, span.trace_id)
    return largest


def max_span_id(traces: "TraceSource") -> int:
    """The largest span id in ``traces`` (0 when nothing was sampled)."""
    return max([0] + [s.span_id for s in traces.iter_records("spans")])


@dataclass(frozen=True)
class StitchOffsets:
    """The shifts applied to one replica's records during a merge."""

    time: float = 0.0
    request_id: int = 0
    span_id: int = 0


def accumulate_offsets(
    parts: Iterable[tuple],
) -> Iterator[StitchOffsets]:
    """Yield the offsets for each part of a merge, in part order.

    ``parts`` supplies ``(extent, max_request_id, max_span_id)`` per
    replica/shard — from live traces in the in-memory path, from
    manifests in the on-disk path.  Part ``k``'s offsets are the sums
    over parts ``0..k-1``; an empty part contributes its extent (its
    simulated duration) but zero id headroom, so it neither collapses
    the timeline nor burns identifier space.

    A part may carry a fourth element, the ``continues`` flag a windowed
    collection stamps into continuation shards (every window of one
    replica after the first).  Continuation parts extend the *group*
    their predecessor opened: all members share the group leader's
    offsets — their timestamps and identifiers are already absolute
    within the replica, not window-relative — and the group advances
    the accumulator once, by its **max** (not sum) extent and ids, which
    for absolute values is exactly what the replica's single-shot shard
    would have contributed.
    """
    time = 0.0
    request_id = 0
    span_id = 0
    group: Optional[tuple[float, int, int]] = None
    for part in parts:
        extent, part_max_request_id, part_max_span_id = part[0], part[1], part[2]
        continues = len(part) > 3 and bool(part[3])
        if continues and group is not None:
            group = (
                max(group[0], extent),
                max(group[1], part_max_request_id),
                max(group[2], part_max_span_id),
            )
        else:
            if group is not None:
                time += group[0]
                request_id += group[1]
                span_id += group[2]
            group = (extent, part_max_request_id, part_max_span_id)
        yield StitchOffsets(time=time, request_id=request_id, span_id=span_id)


def offsets_for(parts: Sequence[tuple]) -> list[StitchOffsets]:
    """Materialized :func:`accumulate_offsets` (convenience for indexing)."""
    return list(accumulate_offsets(parts))


def total_extent(parts: Iterable[tuple]) -> float:
    """Stitched timeline length for ``parts`` (group-aware, like offsets).

    Plain parts sum their extents; a continuation group contributes its
    max member extent once.
    """
    total = 0.0
    group = 0.0
    first = True
    for part in parts:
        extent = part[0]
        continues = len(part) > 3 and bool(part[3])
        if continues and not first:
            group = max(group, extent)
        else:
            total += group
            group = extent
        first = False
    return total + group
