"""Per-shard manifests: everything a merge needs without reading records.

A manifest is the only thing a fleet worker returns through the process
pool — a few hundred bytes instead of a pickled million-record
``TraceSet``.  It carries exactly the quantities the stitch arithmetic
consumes (``extent``, ``max_request_id``, ``max_span_id``) plus the
replica's provenance (seed, index, spec parameters) so downstream
analysis can group shards by sweep parameters without opening a single
stream file.

Version 2 adds two fields for multi-round stores:

* ``round`` — which collection round wrote the shard (``repro append``
  adds rounds to an existing store; round 0 is the initial collect).
* ``content_hashes`` — sha256 of each stream file's raw bytes, computed
  at finalize time.  These make shard edits and corruption detectable
  (`ShardStore.verify`) and key the incremental analysis cache.

Round files (``round-<n>.json`` at the store root) record which shard
indices each round produced; ``compact_store`` folds them into a single
``index.json`` so a reader of a many-round store stats one file instead
of globbing.

Version 3 adds ``codec`` — which stream layout the shard's files use
(``"jsonl"`` for ``.jsonl[.gz]`` lines, ``"columnar"`` for the binary
struct-of-arrays layout of :mod:`repro.tracing.columnar`).  Readers
negotiate per shard, so a store may mix codecs freely; v1/v2 manifests
read as ``codec="jsonl"``.

Version 4 adds ``tool_version`` — the package version of the tool that
wrote the shard, for provenance when a long-lived store accumulates
rounds across upgrades.  Pre-v4 manifests read as ``tool_version=""``.

Version 5 adds ``continues`` — set on every window shard after a
replica's first when ``repro collect --windows N`` splits one replica
across N shards.  A continuation shard carries timestamps and ids that
are already absolute within its replica, so the stitch arithmetic gives
the whole continuation group the group leader's offsets and advances by
the group max instead of summing (see
:func:`repro.store.stitch.accumulate_offsets`).  Pre-v5 manifests read
as ``continues=False``.
"""

from __future__ import annotations

import json
import os
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Any, Mapping, Optional

__all__ = [
    "MANIFEST_FILENAME",
    "SHARD_CODECS",
    "SHARD_FORMAT",
    "SHARD_VERSION",
    "STORE_INDEX_FILENAME",
    "ShardManifest",
    "StoreIndex",
    "compact_store",
    "load_store_index",
    "load_store_rounds",
    "parse_shard_index",
    "round_filename",
    "shard_manifest_paths",
    "write_round_file",
]

SHARD_FORMAT = "repro-shard"
SHARD_VERSION = 5
MANIFEST_FILENAME = "manifest.json"

#: Stream layouts a shard may use (`ShardManifest.codec`).
SHARD_CODECS = ("jsonl", "columnar")

ROUND_FORMAT = "repro-store-round"
STORE_INDEX_FORMAT = "repro-store-index"
STORE_INDEX_VERSION = 1
STORE_INDEX_FILENAME = "index.json"


@dataclass(frozen=True)
class ShardManifest:
    """What one shard contains and where it sits in a merge."""

    index: int
    app: str = ""
    seed: int = 0
    #: Replica spec parameters (n_requests, arrival_rate, sample_every,
    #: plus anything a sweep varied) — the group-by key space.
    params: dict[str, Any] = field(default_factory=dict)
    #: Simulated duration the replica reported (0.0 when unknown).
    duration: float = 0.0
    #: Stitch extent: max(duration, latest timestamp in any stream).
    extent: float = 0.0
    counts: dict[str, int] = field(default_factory=dict)
    max_request_id: int = 0
    max_span_id: int = 0
    #: Completed-request counts per request class (requests are only
    #: recorded on completion, so these are trainable-population sizes).
    request_classes: dict[str, int] = field(default_factory=dict)
    compress: bool = False
    #: Stream layout of this shard's files: ``"jsonl"`` line files or
    #: the binary ``"columnar"`` struct-of-arrays layout.  Pre-v3
    #: manifests have no codec field and read as ``"jsonl"``.
    codec: str = "jsonl"
    #: Collection round that wrote this shard (0 = initial collect;
    #: each ``repro append`` increments it).
    round: int = 0
    #: sha256 hex digest of each stream file's raw bytes at finalize
    #: time, keyed by stream name.  Empty for version-1 shards.
    content_hashes: dict[str, str] = field(default_factory=dict)
    #: Package version of the tool that wrote the shard ("" pre-v4).
    tool_version: str = ""
    #: True when this shard continues the previous shard's replica (a
    #: non-first window of a windowed collection): its timestamps and
    #: ids are absolute within that replica, so it shares the group
    #: leader's stitch offsets instead of opening a new timeline slot.
    continues: bool = False
    version: int = SHARD_VERSION

    @property
    def n_records(self) -> int:
        return sum(self.counts.values())

    def stitch_part(self) -> tuple[float, int, int, bool]:
        """The ``(extent, max_request_id, max_span_id, continues)`` tuple."""
        return (self.extent, self.max_request_id, self.max_span_id, self.continues)

    def param(self, key: str, default: Any = None) -> Any:
        """Look up a grouping key: manifest field first, then params."""
        if key in ("index", "app", "seed", "duration", "extent", "round"):
            return getattr(self, key)
        return self.params.get(key, default)

    def to_dict(self) -> dict[str, Any]:
        data = asdict(self)
        data["format"] = SHARD_FORMAT
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ShardManifest":
        data = dict(data)
        fmt = data.pop("format", SHARD_FORMAT)
        if fmt != SHARD_FORMAT:
            raise ValueError(f"not a shard manifest (format {fmt!r})")
        version = data.get("version", SHARD_VERSION)
        if not isinstance(version, int) or version > SHARD_VERSION:
            raise ValueError(f"unsupported shard manifest version {version!r}")
        # Version-1 manifests predate rounds and hashes, version-2 ones
        # predate codecs; the dataclass defaults (round 0, no hashes,
        # jsonl codec) are the right reading.
        manifest = cls(**data)
        if manifest.codec not in SHARD_CODECS:
            raise ValueError(f"unknown shard codec {manifest.codec!r}")
        return manifest

    def save(self, directory: str | Path) -> Path:
        """Write ``manifest.json`` into a shard directory.

        Written via a temp file + ``os.replace`` so a concurrent store
        watcher either sees no manifest (shard still being written) or a
        complete one — never a torn read.  Manifest presence is the
        shard-visibility signal for :func:`repro.store.take_snapshot`.
        """
        path = Path(directory) / MANIFEST_FILENAME
        tmp = path.with_suffix(".json.tmp")
        tmp.write_text(
            json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"
        )
        os.replace(tmp, path)
        return path

    @classmethod
    def load(cls, path: str | Path) -> "ShardManifest":
        """Read a manifest from ``manifest.json`` (or its directory)."""
        path = Path(path)
        if path.is_dir():
            path = path / MANIFEST_FILENAME
        return cls.from_dict(json.loads(path.read_text()))


def parse_shard_index(name: str) -> Optional[int]:
    """Shard index parsed from a ``shard-<n>`` directory name.

    Accepts any zero-pad width (historic stores pad to 5 digits, new
    ones to 8); returns ``None`` for names that are not shard dirs.
    """
    prefix = "shard-"
    if not name.startswith(prefix):
        return None
    digits = name[len(prefix):]
    return int(digits) if digits.isdigit() else None


def shard_manifest_paths(directory: str | Path) -> list[Path]:
    """Every ``shard-*/manifest.json`` path, sorted by parsed index.

    Lexicographic glob order diverges from index order once pad widths
    mix (``shard-100000`` sorts before ``shard-99999``), so every store
    reader iterates in parsed-index order instead.
    """
    paths = list(Path(directory).glob("shard-*/manifest.json"))
    paths.sort(
        key=lambda p: (
            parse_shard_index(p.parent.name) is None,
            parse_shard_index(p.parent.name) or 0,
            p.parent.name,
        )
    )
    return paths


# -- store-level round tracking ----------------------------------------------


def round_filename(round_index: int) -> str:
    """Name of the per-round index file at the store root."""
    return f"round-{round_index:05d}.json"


def write_round_file(
    directory: str | Path, round_index: int, shard_indices: list[int]
) -> Path:
    """Record which shard indices a collection round produced.

    Merges with an existing round file (union of shard indices) rather
    than overwriting it: two writers that allocated the same round
    number — e.g. a batch ``repro append`` racing a live-ingest commit —
    each add their shards instead of delisting the other's, which under
    complete-rounds-only visibility gating would otherwise leave those
    shards permanently invisible.  An unreadable existing file is
    replaced.  Written via temp + ``os.replace`` so readers never see a
    torn round file.
    """
    path = Path(directory) / round_filename(round_index)
    shards = set(int(i) for i in shard_indices)
    if path.exists():
        try:
            existing = json.loads(path.read_text())
            if existing.get("format") == ROUND_FORMAT:
                shards.update(int(i) for i in existing.get("shards", []))
        except (OSError, ValueError):
            pass  # corrupt round file: rewrite it from what we know
    tmp = path.with_suffix(".json.tmp")
    tmp.write_text(
        json.dumps(
            {
                "format": ROUND_FORMAT,
                "version": STORE_INDEX_VERSION,
                "round": round_index,
                "shards": sorted(shards),
            },
            indent=2,
            sort_keys=True,
        )
        + "\n"
    )
    os.replace(tmp, path)
    return path


def load_store_rounds(directory: str | Path) -> dict[int, list[int]]:
    """Read every ``round-*.json`` file: round index -> shard indices.

    Single-round stores written before rounds existed have no round
    files; callers treat every shard as round 0 in that case.
    """
    rounds: dict[int, list[int]] = {}
    for path in sorted(Path(directory).glob("round-*.json")):
        data = json.loads(path.read_text())
        if data.get("format") != ROUND_FORMAT:
            raise ValueError(f"{path} is not a store round file")
        rounds[int(data["round"])] = [int(i) for i in data["shards"]]
    return rounds


@dataclass(frozen=True)
class StoreIndex:
    """Compacted store-level index: one file instead of N round files.

    Holds the round → shard-indices map plus per-shard content-hash
    digests, so integrity checks and cache invalidation can start
    without touching any per-shard manifest.
    """

    rounds: dict[int, list[int]] = field(default_factory=dict)
    #: Combined digest per shard index: sha256 over the shard's sorted
    #: per-stream hashes (empty string for hashless v1 shards).
    shard_digests: dict[int, str] = field(default_factory=dict)

    @property
    def n_shards(self) -> int:
        return sum(len(v) for v in self.rounds.values())

    def to_dict(self) -> dict[str, Any]:
        return {
            "format": STORE_INDEX_FORMAT,
            "version": STORE_INDEX_VERSION,
            "rounds": {str(k): sorted(v) for k, v in sorted(self.rounds.items())},
            "shard_digests": {
                str(k): v for k, v in sorted(self.shard_digests.items())
            },
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "StoreIndex":
        fmt = data.get("format")
        if fmt != STORE_INDEX_FORMAT:
            raise ValueError(f"not a store index (format {fmt!r})")
        version = data.get("version")
        if not isinstance(version, int) or version > STORE_INDEX_VERSION:
            raise ValueError(f"unsupported store index version {version!r}")
        return cls(
            rounds={int(k): [int(i) for i in v] for k, v in data["rounds"].items()},
            shard_digests={
                int(k): str(v) for k, v in data.get("shard_digests", {}).items()
            },
        )

    def save(self, directory: str | Path) -> Path:
        path = Path(directory) / STORE_INDEX_FILENAME
        path.write_text(
            json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"
        )
        return path


def load_store_index(directory: str | Path) -> Optional[StoreIndex]:
    """Read ``index.json`` if present (None otherwise)."""
    path = Path(directory) / STORE_INDEX_FILENAME
    if not path.exists():
        return None
    return StoreIndex.from_dict(json.loads(path.read_text()))


def compact_store(directory: str | Path) -> StoreIndex:
    """Fold round files (and shard manifests) into one ``index.json``.

    Reads every shard manifest once, groups shards by their recorded
    round, writes the combined :class:`StoreIndex`, and removes the now
    redundant ``round-*.json`` files.  Idempotent: compacting twice is
    a no-op, and appending after a compact simply adds new round files
    to fold in next time.
    """
    from .cache import combine_hashes  # local import: cache imports manifest

    directory = Path(directory)
    rounds: dict[int, list[int]] = {}
    digests: dict[int, str] = {}
    for manifest_path in shard_manifest_paths(directory):
        manifest = ShardManifest.load(manifest_path)
        rounds.setdefault(manifest.round, []).append(manifest.index)
        digests[manifest.index] = (
            combine_hashes(manifest.content_hashes)
            if manifest.content_hashes
            else ""
        )
    index = StoreIndex(rounds=rounds, shard_digests=digests)
    index.save(directory)
    for path in directory.glob("round-*.json"):
        path.unlink()
    return index
