"""Per-shard manifests: everything a merge needs without reading records.

A manifest is the only thing a fleet worker returns through the process
pool — a few hundred bytes instead of a pickled million-record
``TraceSet``.  It carries exactly the quantities the stitch arithmetic
consumes (``extent``, ``max_request_id``, ``max_span_id``) plus the
replica's provenance (seed, index, spec parameters) so downstream
analysis can group shards by sweep parameters without opening a single
stream file.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Any, Mapping

__all__ = ["MANIFEST_FILENAME", "SHARD_FORMAT", "SHARD_VERSION", "ShardManifest"]

SHARD_FORMAT = "repro-shard"
SHARD_VERSION = 1
MANIFEST_FILENAME = "manifest.json"


@dataclass(frozen=True)
class ShardManifest:
    """What one shard contains and where it sits in a merge."""

    index: int
    app: str = ""
    seed: int = 0
    #: Replica spec parameters (n_requests, arrival_rate, sample_every,
    #: plus anything a sweep varied) — the group-by key space.
    params: dict[str, Any] = field(default_factory=dict)
    #: Simulated duration the replica reported (0.0 when unknown).
    duration: float = 0.0
    #: Stitch extent: max(duration, latest timestamp in any stream).
    extent: float = 0.0
    counts: dict[str, int] = field(default_factory=dict)
    max_request_id: int = 0
    max_span_id: int = 0
    #: Completed-request counts per request class (requests are only
    #: recorded on completion, so these are trainable-population sizes).
    request_classes: dict[str, int] = field(default_factory=dict)
    compress: bool = False
    version: int = SHARD_VERSION

    @property
    def n_records(self) -> int:
        return sum(self.counts.values())

    def stitch_part(self) -> tuple[float, int, int]:
        """The ``(extent, max_request_id, max_span_id)`` stitch tuple."""
        return (self.extent, self.max_request_id, self.max_span_id)

    def param(self, key: str, default: Any = None) -> Any:
        """Look up a grouping key: manifest field first, then params."""
        if key in ("index", "app", "seed", "duration", "extent"):
            return getattr(self, key)
        return self.params.get(key, default)

    def to_dict(self) -> dict[str, Any]:
        data = asdict(self)
        data["format"] = SHARD_FORMAT
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ShardManifest":
        data = dict(data)
        fmt = data.pop("format", SHARD_FORMAT)
        if fmt != SHARD_FORMAT:
            raise ValueError(f"not a shard manifest (format {fmt!r})")
        version = data.get("version", SHARD_VERSION)
        if not isinstance(version, int) or version > SHARD_VERSION:
            raise ValueError(f"unsupported shard manifest version {version!r}")
        return cls(**data)

    def save(self, directory: str | Path) -> Path:
        """Write ``manifest.json`` into a shard directory."""
        path = Path(directory) / MANIFEST_FILENAME
        path.write_text(
            json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"
        )
        return path

    @classmethod
    def load(cls, path: str | Path) -> "ShardManifest":
        """Read a manifest from ``manifest.json`` (or its directory)."""
        path = Path(path)
        if path.is_dir():
            path = path / MANIFEST_FILENAME
        return cls.from_dict(json.loads(path.read_text()))
