"""Reading a sharded trace store: manifest-stitched, lazily iterated.

A store directory looks like::

    store/
      shard-00000/
        manifest.json
        network.jsonl[.gz]  cpu.jsonl[.gz]  ...  spans.jsonl[.gz]
      shard-00001/
        ...

:class:`ShardStore` reads only the manifests up front.  Records are
iterated stream-by-stream in shard-index order with the same monotonic
time / identifier shifts :func:`repro.datacenter.fleet.merge_replicas`
applies — computed purely from manifest fields, so stitching N shards
costs one pass over the records of interest and never materializes more
than the caller keeps.  :meth:`merged` is therefore byte-identical to
the in-memory merge for any worker count that produced the shards.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Iterator

from ..tracing import TraceSet, shift_request, shift_span, shift_subsystem_record
from ..tracing.columnar import (
    columns_from_records,
    find_columnar_stream,
    iter_columnar_records,
    read_columnar_columns,
)
from ..tracing.store import (
    STREAM_TYPES,
    find_stream_file,
    iter_record_batches,
    iter_stream_records,
    open_trace_write,
    stream_header,
)
from .manifest import MANIFEST_FILENAME, ShardManifest, shard_manifest_paths
from .stitch import StitchOffsets, offsets_for, total_extent

__all__ = ["ShardStore", "is_shard_store", "shifter_for"]


def is_shard_store(directory: str | Path) -> bool:
    """Whether ``directory`` holds at least one shard manifest."""
    return any(Path(directory).glob(f"shard-*/{MANIFEST_FILENAME}"))


#: Stream name -> (record, offsets) shifter.  A dispatch table instead
#: of a per-record conditional chain: hot loops look the shifter up
#: once per (shard, stream) and then call it per record.
_SHIFTERS = {
    "requests": lambda record, o: shift_request(record, o.time, o.request_id),
    "spans": lambda record, o: shift_span(
        record, o.time, o.request_id, o.span_id
    ),
}
_SHIFT_SUBSYSTEM = lambda record, o: shift_subsystem_record(  # noqa: E731
    record, o.time, o.request_id
)


def shifter_for(stream: str, offsets: StitchOffsets):
    """Bound one-argument shifter for a (stream, offsets) pair.

    Hoist this out of record loops: the stream dispatch and offset
    attribute lookups happen once, the returned callable does only the
    shift arithmetic per record.
    """
    shift = _SHIFTERS.get(stream, _SHIFT_SUBSYSTEM)
    return lambda record: shift(record, offsets)


def _shift(stream: str, record, offsets: StitchOffsets):
    return _SHIFTERS.get(stream, _SHIFT_SUBSYSTEM)(record, offsets)


class ShardStore:
    """Lazy, stitch-aware view over an on-disk shard directory."""

    def __init__(self, directory: str | Path):
        self.directory = Path(directory)
        manifest_paths = shard_manifest_paths(self.directory)
        if not manifest_paths:
            raise FileNotFoundError(
                f"no shard manifests under {self.directory} "
                f"(expected shard-*/{MANIFEST_FILENAME})"
            )
        manifests: list[ShardManifest] = []
        shard_dirs: dict[int, Path] = {}
        for path in manifest_paths:
            manifest = ShardManifest.load(path)
            if manifest.index in shard_dirs:
                raise ValueError(
                    f"duplicate shard index {manifest.index} in {self.directory}"
                )
            manifests.append(manifest)
            shard_dirs[manifest.index] = path.parent
        manifests.sort(key=lambda m: m.index)
        self.manifests = manifests
        self._shard_dirs = shard_dirs

    # -- metadata ------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.manifests)

    def shard_dir(self, manifest: ShardManifest) -> Path:
        return self._shard_dirs[manifest.index]

    def offsets(self) -> list[StitchOffsets]:
        """Per-shard stitch offsets, computed from manifests alone."""
        return offsets_for([m.stitch_part() for m in self.manifests])

    def counts(self) -> dict[str, int]:
        """Total record counts per stream across all shards."""
        totals = {stream: 0 for stream in STREAM_TYPES}
        for manifest in self.manifests:
            for stream, n in manifest.counts.items():
                totals[stream] = totals.get(stream, 0) + n
        return totals

    def request_class_counts(self) -> dict[str, int]:
        """Completed requests per request class across all shards."""
        totals: dict[str, int] = {}
        for manifest in self.manifests:
            for cls, n in manifest.request_classes.items():
                totals[cls] = totals.get(cls, 0) + n
        return dict(sorted(totals.items()))

    def rounds(self) -> dict[int, list[ShardManifest]]:
        """Shard manifests grouped by collection round, both sorted.

        Pre-round stores (version-1 manifests) report everything as
        round 0.
        """
        grouped: dict[int, list[ShardManifest]] = {}
        for manifest in self.manifests:
            grouped.setdefault(manifest.round, []).append(manifest)
        return dict(sorted(grouped.items()))

    def verify(self) -> dict[int, list[str]]:
        """Re-hash every stream file against its manifest content hash.

        Returns ``{shard index: [mismatching stream names]}`` for shards
        whose bytes no longer match what :class:`ShardWriter` recorded —
        edits, truncation, corruption.  Hashless version-1 shards verify
        trivially.  An empty dict means the store is intact.

        Legacy jsonl digests (a plain sha256 of the single stream file)
        and columnar digests (a combined digest over header + column
        buffers) both flow through
        :func:`repro.store.stream_content_hash`, so stores written by
        any version verify with the same code path.
        """
        from .cache import stream_content_hash

        bad: dict[int, list[str]] = {}
        for manifest in self.manifests:
            shard_dir = self.shard_dir(manifest)
            for stream, expected in manifest.content_hashes.items():
                if stream_content_hash(shard_dir, stream) != expected:
                    bad.setdefault(manifest.index, []).append(stream)
        return bad

    def group_by(self, key: str) -> dict[Any, list[ShardManifest]]:
        """Group shard manifests by a spec parameter (sweep analysis).

        ``key`` may be a manifest field (``app``, ``seed``, ...) or any
        parameter recorded in ``params`` (``arrival_rate``,
        ``n_requests``, ...).
        """
        groups: dict[Any, list[ShardManifest]] = {}
        for manifest in self.manifests:
            groups.setdefault(manifest.param(key), []).append(manifest)
        return groups

    # -- TraceSource protocol ------------------------------------------------

    def streams(self) -> tuple[str, ...]:
        """Stream names in canonical order (``TraceSource`` protocol)."""
        return tuple(STREAM_TYPES)

    def iter_records(self, stream: str) -> Iterator:
        """Yield one stream's records, stitched (``TraceSource`` protocol)."""
        return self.iter_stream(stream)

    def extent(self) -> float:
        """Total stitched timeline length, from manifests alone.

        Each shard (or windowed continuation group, which occupies one
        slot) is shifted past the cumulative extent of its predecessors,
        so the merged timeline ends where the last group's shifted
        extent does.
        """
        return total_extent([m.stitch_part() for m in self.manifests])

    def classes(self) -> dict[str, int]:
        """Completed-request counts per class (``TraceSource`` protocol)."""
        return self.request_class_counts()

    # -- records -------------------------------------------------------------

    def iter_shard_stream(self, manifest: ShardManifest, stream: str) -> Iterator:
        """Yield one shard's records for ``stream``, unshifted.

        Works for either codec: columnar shards materialize record
        objects identical to what the JSONL reader yields.
        """
        shard_dir = self.shard_dir(manifest)
        path = find_stream_file(shard_dir, stream)
        if path is not None:
            yield from iter_stream_records(path, STREAM_TYPES[stream])
            return
        if find_columnar_stream(shard_dir, stream) is not None:
            yield from iter_columnar_records(shard_dir, stream)

    def iter_shard_stream_batches(
        self, manifest: ShardManifest, stream: str, batch_size: int = 1024
    ) -> Iterator[list]:
        """Yield one shard's records for ``stream`` in decoded batches.

        The batched fast path under :meth:`iter_shard_stream` — one list
        per ``batch_size`` records, unshifted.
        """
        shard_dir = self.shard_dir(manifest)
        path = find_stream_file(shard_dir, stream)
        if path is not None:
            yield from iter_record_batches(
                path, STREAM_TYPES[stream], batch_size=batch_size
            )
            return
        if find_columnar_stream(shard_dir, stream) is None:
            return
        batch: list = []
        for record in iter_columnar_records(shard_dir, stream):
            batch.append(record)
            if len(batch) >= batch_size:
                yield batch
                batch = []
        if batch:
            yield batch

    def load_shard_stream_columns(
        self,
        manifest: ShardManifest,
        stream: str,
        names: "list[str] | None" = None,
    ) -> "dict[str, Any] | None":
        """One shard's stream as full (unshifted) column arrays.

        The analyzer's entry point: columnar shards serve their buffers
        directly; jsonl shards decode once and pivot through
        :func:`repro.tracing.columnar.columns_from_records`.  Both
        codecs hand back the identical representation, which is what
        makes cross-codec analyses byte-identical.  ``None`` when the
        stream has no file (empty stream).
        """
        shard_dir = self.shard_dir(manifest)
        path = find_stream_file(shard_dir, stream)
        if path is not None:
            records = list(iter_stream_records(path, STREAM_TYPES[stream]))
            return columns_from_records(stream, records, names)
        return read_columnar_columns(shard_dir, stream, names)

    def iter_stream(self, stream: str) -> Iterator:
        """Yield all shards' records for ``stream``, stitched.

        Shards are visited in index order and every record is shifted by
        the manifest-derived offsets, so the concatenation across shards
        is exactly the stream of the in-memory merged ``TraceSet``.
        """
        if stream not in STREAM_TYPES:
            raise ValueError(f"unknown stream {stream!r}")
        for manifest, offsets in zip(self.manifests, self.offsets()):
            shift = shifter_for(stream, offsets)
            for batch in self.iter_shard_stream_batches(manifest, stream):
                for record in batch:
                    yield shift(record)

    def merged(self) -> TraceSet:
        """Materialize the stitched merge of all shards."""
        traces = TraceSet()
        for stream in STREAM_TYPES:
            getattr(traces, stream).extend(self.iter_stream(stream))
        return traces

    def class_traces(self, request_class: str) -> TraceSet:
        """The stitched records belonging to one request class.

        Materializes only that class's records: the requests stream is
        scanned to learn the class's (globally unique, post-stitch)
        request ids, then the other streams are filtered against them.
        """
        traces = TraceSet()
        ids: set[int] = set()
        for record in self.iter_stream("requests"):
            if record.request_class == request_class:
                ids.add(record.request_id)
                traces.requests.append(record)
        for stream in ("network", "cpu", "memory", "storage"):
            records = getattr(traces, stream)
            for record in self.iter_stream(stream):
                if record.request_id in ids:
                    records.append(record)
        for span in self.iter_stream("spans"):
            if span.trace_id in ids:
                traces.spans.append(span)
        return traces

    # -- export --------------------------------------------------------------

    def save_merged(
        self, directory: str | Path, compress: bool = False
    ) -> Path:
        """Stream the stitched merge into a flat v2 trace dump.

        Equivalent to ``save_traces(self.merged(), directory)`` but never
        holds more than one record in memory per stream.
        """
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        suffix = ".jsonl.gz" if compress else ".jsonl"
        for stream in STREAM_TYPES:
            with open_trace_write(directory / f"{stream}{suffix}") as fh:
                fh.write(json.dumps(stream_header(stream)) + "\n")
                for record in self.iter_stream(stream):
                    fh.write(json.dumps(record.to_dict()) + "\n")
        return directory

    def summary(self) -> dict[str, int]:
        """Record counts per stream (same shape as ``TraceSet.summary``)."""
        return self.counts()
