"""Codec conversion for shard stores: rewrite streams, keep the timeline.

``convert_store`` rewrites every shard of a store into a destination
directory under a chosen codec (``"jsonl"`` or ``"columnar"``), shard
by shard.  Records are read **unshifted** and re-streamed through a
fresh :class:`~repro.store.ShardWriter` carrying the same index, app,
seed, params, round and duration — so the regenerated manifest's
stitch quantities (extent, max ids, counts, per-class counts) are
recomputed from identical records and come out identical, and any
analysis over the converted store is byte-identical to the original
(the acceptance bar ``tests/test_columnar_store.py`` pins down).

Round files / ``index.json`` are regenerated to mirror the source
store's round structure.  The analysis cache (``_cache/``) is *not*
copied: entries key on content hashes and codec, so none would hit.
"""

from __future__ import annotations

from pathlib import Path

from ..tracing.store import STREAM_TYPES
from .manifest import (
    SHARD_CODECS,
    ShardManifest,
    load_store_index,
    load_store_rounds,
    write_round_file,
)
from .shards import ShardStore, is_shard_store
from .writer import ShardWriter, shard_dirname

__all__ = ["convert_flat_dump", "convert_store"]


def convert_store(
    source: str | Path,
    destination: str | Path,
    codec: str,
    compress: bool = False,
) -> list[ShardManifest]:
    """Rewrite a shard store under another codec; returns new manifests.

    ``compress`` gzips jsonl stream files (rejected for columnar, whose
    column buffers are raw binary).  The destination must not already
    hold a shard store.
    """
    if codec not in SHARD_CODECS:
        raise ValueError(f"unknown shard codec {codec!r}")
    source = Path(source)
    destination = Path(destination)
    if not is_shard_store(source):
        raise FileNotFoundError(f"{source} is not a shard store")
    if is_shard_store(destination):
        raise FileExistsError(
            f"{destination} already holds a shard store; choose a fresh "
            "directory"
        )
    store = ShardStore(source)
    destination.mkdir(parents=True, exist_ok=True)
    manifests: list[ShardManifest] = []
    for manifest in store.manifests:
        writer = ShardWriter(
            destination / shard_dirname(manifest.index),
            index=manifest.index,
            app=manifest.app,
            seed=manifest.seed,
            params=manifest.params,
            compress=compress,
            round=manifest.round,
            codec=codec,
        )
        with writer:
            for stream in STREAM_TYPES:
                for record in store.iter_shard_stream(manifest, stream):
                    writer.write(stream, record)
            new_manifest = writer.finalize(duration=manifest.duration)
        manifests.append(new_manifest)
    # Mirror the source's round bookkeeping.  Pre-round stores have no
    # round files; fall back to the manifests' recorded rounds.
    rounds = load_store_rounds(source)
    if not rounds:
        grouped: dict[int, list[int]] = {}
        for m in manifests:
            grouped.setdefault(m.round, []).append(m.index)
        rounds = grouped
    for round_index, shard_indices in sorted(rounds.items()):
        write_round_file(destination, round_index, shard_indices)
    if load_store_index(source) is not None:
        from .manifest import compact_store

        compact_store(destination)
    return manifests


def convert_flat_dump(
    source: str | Path,
    destination: str | Path,
    codec: str,
    compress: bool = False,
) -> Path:
    """Rewrite a flat trace dump under another codec.

    The flat-dump counterpart of :func:`convert_store`: records are
    loaded through :class:`~repro.tracing.FlatTraceDump` (either codec)
    and saved back via :func:`~repro.tracing.save_traces`.
    """
    from ..tracing import TraceSet
    from ..tracing.source import FlatTraceDump
    from ..tracing.store import save_traces

    dump = FlatTraceDump(source)
    traces = TraceSet()
    for stream in dump.streams():
        getattr(traces, stream).extend(dump.iter_records(stream))
    return save_traces(
        traces, destination, compress=compress, codec=codec
    )
