"""Shard-parallel KOOZA training: per-request-class fits over a store.

KOOZA fits are embarrassingly parallel over request classes — each
class's four subsystem models, couplers and dependency queue depend
only on that class's records.  The map phase hands each worker process
a ``(store directory, request class)`` task: the worker opens the
:class:`~repro.store.shards.ShardStore` itself (no trace records cross
the pool), materializes just its class's stitched records across all
shards, and fits a :class:`~repro.core.KoozaModel`.  The reduce phase
collects the serialized models into one per-class table.

Because every worker sees exactly the per-class ``TraceSet`` a
single-process fit would build (same records, same order), the parallel
result is identical to the serial one — the validation contract the
tests pin down with serialized-model equality.

The classes worth fitting are known *before* any stream file is opened:
manifests carry per-class completed-request counts, so undertrained
classes are skipped up front and reported, not discovered by exception.

``repro.core`` is imported lazily inside functions: the core package
pulls in :mod:`repro.datacenter`, whose fleet module imports this
package — a module-level import here would close that cycle.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Any, Optional

from ..simulation import run_sharded
from .shards import ShardStore

if TYPE_CHECKING:  # pragma: no cover - type-only imports
    from ..core import KoozaConfig, KoozaModel

__all__ = [
    "ClassFitTask",
    "PER_CLASS_FORMAT",
    "PerClassFit",
    "fit_request_class",
    "load_per_class_models",
    "save_per_class_models",
    "train_per_class",
]

PER_CLASS_FORMAT = "kooza-per-class"
PER_CLASS_VERSION = 1

#: KoozaTrainer refuses fewer feature vectors than this.
MIN_TRAINABLE_REQUESTS = 16


@dataclass(frozen=True)
class ClassFitTask:
    """One worker's share: fit one request class from an on-disk store."""

    directory: str
    request_class: str
    config: Optional["KoozaConfig"] = None


def fit_request_class(task: ClassFitTask) -> tuple[str, dict]:
    """Worker entry point: fit one class, return its serialized model.

    Returns ``(request_class, model_dict)`` — the JSON-able serialized
    form, a few KB, instead of a live model object, keeping the pool's
    IPC as thin as the collection side's manifests.
    """
    from ..core import KoozaTrainer, model_to_dict

    store = ShardStore(task.directory)
    traces = store.class_traces(task.request_class)
    model = KoozaTrainer(task.config).fit(traces)
    return task.request_class, model_to_dict(model)


@dataclass
class PerClassFit:
    """The reduced result of a shard-parallel training run."""

    models: dict[str, "KoozaModel"]
    #: Classes below the trainable threshold, with their request counts.
    skipped: dict[str, int] = field(default_factory=dict)
    workers: int = 1
    elapsed_seconds: float = 0.0

    @property
    def n_classes(self) -> int:
        return len(self.models)


def train_per_class(
    directory: str | Path,
    config: Optional["KoozaConfig"] = None,
    workers: int = 1,
    min_requests: int = MIN_TRAINABLE_REQUESTS,
) -> PerClassFit:
    """Fit one KOOZA model per request class, fanned across processes.

    ``workers=1`` runs inline and is the deterministic reference the
    pooled result matches exactly.  Classes with fewer than
    ``min_requests`` completed requests (summed over shard manifests)
    are skipped and reported in :attr:`PerClassFit.skipped`.
    """
    from ..core import model_from_dict

    store = ShardStore(directory)
    counts = store.request_class_counts()
    trainable = sorted(c for c, n in counts.items() if n >= min_requests)
    skipped = {c: n for c, n in counts.items() if n < min_requests}
    tasks = [
        ClassFitTask(str(directory), cls, config) for cls in trainable
    ]
    start = time.perf_counter()
    results = run_sharded(fit_request_class, tasks, workers)
    elapsed = time.perf_counter() - start
    models = {cls: model_from_dict(data) for cls, data in results}
    return PerClassFit(
        models=models,
        skipped=skipped,
        workers=workers,
        elapsed_seconds=elapsed,
    )


def save_per_class_models(
    models: dict[str, "KoozaModel"], path: str | Path
) -> Path:
    """Serialize a per-class model table to one JSON file."""
    import json

    from ..core import model_to_dict

    path = Path(path)
    payload: dict[str, Any] = {
        "format": PER_CLASS_FORMAT,
        "version": PER_CLASS_VERSION,
        "classes": {
            cls: model_to_dict(model) for cls, model in sorted(models.items())
        },
    }
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True))
    return path


def load_per_class_models(path: str | Path) -> dict[str, "KoozaModel"]:
    """Load a per-class model table written by :func:`save_per_class_models`."""
    import json

    from ..core import model_from_dict

    data = json.loads(Path(path).read_text())
    if data.get("format") != PER_CLASS_FORMAT:
        raise ValueError(f"{path} is not a {PER_CLASS_FORMAT} file")
    if data.get("version", 1) > PER_CLASS_VERSION:
        raise ValueError(f"unsupported per-class model version in {path}")
    return {
        cls: model_from_dict(payload)
        for cls, payload in data["classes"].items()
    }
