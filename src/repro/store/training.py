"""Shard-parallel KOOZA training: per-request-class fits over a store.

KOOZA fits are embarrassingly parallel over request classes — each
class's four subsystem models, couplers and dependency queue depend
only on that class's records.  The map phase hands each worker process
a ``(store directory, request class)`` task: the worker opens the
:class:`~repro.store.shards.ShardStore` itself (no trace records cross
the pool), materializes just its class's stitched records across all
shards, and fits a :class:`~repro.core.KoozaModel`.  The reduce phase
collects the serialized models into one per-class table.

Because every worker sees exactly the per-class ``TraceSet`` a
single-process fit would build (same records, same order), the parallel
result is identical to the serial one — the validation contract the
tests pin down with serialized-model equality.

The classes worth fitting are known *before* any stream file is opened:
manifests carry per-class completed-request counts, so undertrained
classes are skipped up front and reported, not discovered by exception.

``repro.core`` is imported lazily inside functions: the core package
pulls in :mod:`repro.datacenter`, whose fleet module imports this
package — a module-level import here would close that cycle.
"""

from __future__ import annotations

import time
import warnings
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Any, Optional

from ..simulation import run_sharded
from ..tracing import TraceSource, as_trace_set
from .shards import ShardStore

if TYPE_CHECKING:  # pragma: no cover - type-only imports
    from ..core import KoozaConfig, KoozaModel

__all__ = [
    "ClassFitTask",
    "PER_CLASS_FORMAT",
    "PerClassFit",
    "fit_request_class",
    "load_per_class_models",
    "save_per_class_models",
    "train_per_class",
]

PER_CLASS_FORMAT = "kooza-per-class"
PER_CLASS_VERSION = 1

#: KoozaTrainer refuses fewer feature vectors than this.
MIN_TRAINABLE_REQUESTS = 16


@dataclass(frozen=True)
class ClassFitTask:
    """One worker's share: fit one request class from an on-disk store."""

    directory: str
    request_class: str
    config: Optional["KoozaConfig"] = None


def fit_request_class(task: ClassFitTask) -> tuple[str, dict]:
    """Worker entry point: fit one class, return its serialized model.

    Returns ``(request_class, model_dict)`` — the JSON-able serialized
    form, a few KB, instead of a live model object, keeping the pool's
    IPC as thin as the collection side's manifests.
    """
    from ..core import KoozaTrainer, model_to_dict

    store = ShardStore(task.directory)
    traces = store.class_traces(task.request_class)
    model = KoozaTrainer(task.config).fit(traces)
    return task.request_class, model_to_dict(model)


@dataclass
class PerClassFit:
    """The reduced result of a shard-parallel training run."""

    models: dict[str, "KoozaModel"]
    #: Classes below the trainable threshold, with their request counts.
    skipped: dict[str, int] = field(default_factory=dict)
    workers: int = 1
    elapsed_seconds: float = 0.0
    #: Classes restored from / missing in the persistent model cache
    #: (both 0 when caching was off or the source is not a store).
    cache_hits: int = 0
    cache_misses: int = 0

    @property
    def n_classes(self) -> int:
        return len(self.models)


def train_per_class(
    source: TraceSource | str | Path | None = None,
    config: Optional["KoozaConfig"] = None,
    workers: int = 1,
    min_requests: int = MIN_TRAINABLE_REQUESTS,
    *,
    cache: bool = False,
    directory: str | Path | None = None,
) -> PerClassFit:
    """Fit one KOOZA model per request class.

    ``source`` is any :class:`~repro.tracing.TraceSource` or a path
    (auto-detected via :func:`~repro.tracing.load_traces`).  A shard
    store fans one worker process per class; ``workers=1`` runs inline
    and is the deterministic reference the pooled result matches
    exactly.  Other sources are split by class in-process (their
    records already live in this process, so there is nothing to gain
    from shipping them across a pool).  Classes with fewer than
    ``min_requests`` completed requests are skipped and reported in
    :attr:`PerClassFit.skipped`.

    With ``cache=True`` (stores only) each class's serialized fit is
    persisted under ``<store>/_cache/models/`` keyed by the store-wide
    content hash, the class name and the training configuration.  A fit
    depends on every shard (class records are stitched across all of
    them), so unlike the per-shard analysis cache this is a whole-model
    cache: any shard change — including an append — invalidates it.  It
    pays off for repeated runs over an unchanged store, e.g. a
    ``validate --per-class`` following a ``train``.

    .. deprecated:: 0.3
       The ``directory=`` keyword; pass the store path (or any trace
       source) positionally or as ``source=``.
    """
    from ..core import model_from_dict

    if directory is not None:
        warnings.warn(
            "train_per_class(directory=...) is deprecated; pass the trace "
            "source positionally or as source=",
            DeprecationWarning,
            stacklevel=2,
        )
        if source is not None:
            raise TypeError("pass either source or directory, not both")
        source = directory
    if source is None:
        raise TypeError("train_per_class() missing the trace source")
    if isinstance(source, (str, Path)):
        from ..tracing import load_traces

        source = load_traces(source)

    counts = source.classes()
    trainable = sorted(c for c, n in counts.items() if n >= min_requests)
    skipped = {c: n for c, n in counts.items() if n < min_requests}
    start = time.perf_counter()
    cache_hits = cache_misses = 0
    if isinstance(source, ShardStore):
        models = {}
        pending = trainable
        cache_paths: dict[str, Path] = {}
        if cache:
            import dataclasses
            import json

            from ..core import KoozaConfig
            from .cache import (
                combine_hashes,
                load_model_cache,
                model_cache_path,
                save_model_cache,
                shard_content_hash,
            )

            store_hash = combine_hashes(
                {
                    source.shard_dir(m).name: shard_content_hash(
                        source.shard_dir(m)
                    )
                    for m in source.manifests
                }
            )
            config_digest = json.dumps(
                dataclasses.asdict(config if config is not None else KoozaConfig()),
                sort_keys=True,
                default=str,
            )
            pending = []
            for cls in trainable:
                path = model_cache_path(
                    source.directory, cls, store_hash, config_digest
                )
                cache_paths[cls] = path
                data = load_model_cache(path, cls)
                if data is not None:
                    models[cls] = model_from_dict(data)
                    cache_hits += 1
                else:
                    pending.append(cls)
                    cache_misses += 1
        tasks = [
            ClassFitTask(str(source.directory), cls, config)
            for cls in pending
        ]
        results = run_sharded(fit_request_class, tasks, workers)
        for cls, data in results:
            models[cls] = model_from_dict(data)
            if cache:
                save_model_cache(cache_paths[cls], cls, data)
        models = {cls: models[cls] for cls in trainable}
    else:
        from ..core import KoozaTrainer, split_traces_by_class

        by_class = split_traces_by_class(as_trace_set(source))
        models = {
            cls: KoozaTrainer(config).fit(by_class[cls]) for cls in trainable
        }
        workers = 1
    elapsed = time.perf_counter() - start
    return PerClassFit(
        models=models,
        skipped=skipped,
        workers=workers,
        elapsed_seconds=elapsed,
        cache_hits=cache_hits,
        cache_misses=cache_misses,
    )


def save_per_class_models(
    models: dict[str, "KoozaModel"], path: str | Path
) -> Path:
    """Serialize a per-class model table to one JSON file."""
    import json

    from ..core import model_to_dict

    path = Path(path)
    payload: dict[str, Any] = {
        "format": PER_CLASS_FORMAT,
        "version": PER_CLASS_VERSION,
        "classes": {
            cls: model_to_dict(model) for cls, model in sorted(models.items())
        },
    }
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True))
    return path


def load_per_class_models(path: str | Path) -> dict[str, "KoozaModel"]:
    """Load a per-class model table written by :func:`save_per_class_models`."""
    import json

    from ..core import model_from_dict

    data = json.loads(Path(path).read_text())
    if data.get("format") != PER_CLASS_FORMAT:
        raise ValueError(f"{path} is not a {PER_CLASS_FORMAT} file")
    if data.get("version", 1) > PER_CLASS_VERSION:
        raise ValueError(f"unsupported per-class model version in {path}")
    return {
        cls: model_from_dict(payload)
        for cls, payload in data["classes"].items()
    }
