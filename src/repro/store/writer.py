"""Incremental shard writer: the streaming end of the trace store.

A :class:`ShardWriter` is the sink a fleet replica's
:class:`~repro.tracing.Tracer` streams into: every record is appended
to ``<shard-dir>/<stream>.jsonl[.gz]`` the moment it is collected, and
the stitch bookkeeping (extent, max ids, per-class request counts) is
tracked incrementally with exactly the semantics of
:mod:`repro.store.stitch` — so the manifest written by
:meth:`finalize` describes the shard without ever re-reading it, and a
merge driven purely by manifests reproduces the in-memory merge
byte for byte.
"""

from __future__ import annotations

import json
import math
from pathlib import Path
from typing import Any, Mapping, Optional, TextIO

from .._version import tool_version
from ..tracing.columnar import ColumnarStreamWriter
from ..tracing.store import STREAM_TYPES, open_trace_write, stream_header
from .manifest import SHARD_CODECS, ShardManifest

__all__ = ["ShardWriter", "shard_dirname"]

_dumps = json.dumps

#: Lines buffered per jsonl stream before hitting the file object.  The
#: buffered bytes are identical to per-record writes (flushes are pure
#: concatenation), but gzip streams see ~2 orders of magnitude fewer
#: write calls.
_BUFFER_LINES = 256


def shard_dirname(index: int) -> str:
    """Canonical shard directory name.

    Zero-padded to 8 digits so lexicographic order matches index order
    up to 100M shards.  Readers sort by the *parsed* index
    (:func:`repro.store.parse_shard_index`) rather than name order, so
    stores mixing this pad with the historic 5-digit one still merge
    in index order.
    """
    return f"shard-{index:08d}"


class ShardWriter:
    """Streams one replica's records to disk and distills its manifest.

    Satisfies the ``Tracer`` sink protocol (``write(stream, record)``).
    Stream files are opened lazily, so an empty stream leaves no file —
    the reader treats a missing file as an empty stream, same as the
    flat-dump loader.
    """

    def __init__(
        self,
        directory: str | Path,
        index: int,
        app: str = "",
        seed: int = 0,
        params: Optional[Mapping[str, Any]] = None,
        compress: bool = False,
        round: int = 0,
        codec: str = "jsonl",
        continues: bool = False,
    ):
        if codec not in SHARD_CODECS:
            raise ValueError(f"unknown shard codec {codec!r}")
        if codec == "columnar" and compress:
            raise ValueError(
                "columnar shards do not support compress "
                "(column buffers are raw binary)"
            )
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.index = index
        self.app = app
        self.seed = seed
        self.params = dict(params or {})
        self.compress = compress
        self.codec = codec
        self.round = round
        self.continues = continues
        self._suffix = ".jsonl.gz" if compress else ".jsonl"
        self._files: dict[str, TextIO] = {}
        self._buffers: dict[str, list[str]] = {}
        self._columns: dict[str, ColumnarStreamWriter] = {}
        self._finalized = False
        # Stitch bookkeeping, incremental mirror of repro.store.stitch.
        self._extent = 0.0
        self._max_request_id = 0
        self._max_span_id = 0
        self._counts = {stream: 0 for stream in STREAM_TYPES}
        self._request_classes: dict[str, int] = {}

    # -- sink protocol -------------------------------------------------------

    def write(self, stream: str, record) -> None:
        """Append one record to its stream file and update bookkeeping.

        jsonl records are staged in a per-stream line buffer and flushed
        in batches (and at :meth:`finalize`); the flushed bytes are
        identical to unbuffered per-record writes.
        """
        if self._finalized:
            raise RuntimeError("shard already finalized")
        if self.codec == "columnar":
            writer = self._columns.get(stream)
            if writer is None:
                if stream not in STREAM_TYPES:
                    raise ValueError(f"unknown stream {stream!r}")
                writer = ColumnarStreamWriter(self.directory, stream)
                self._columns[stream] = writer
            writer.write(record)
        else:
            buffer = self._buffers.get(stream)
            if buffer is None:
                if stream not in STREAM_TYPES:
                    raise ValueError(f"unknown stream {stream!r}")
                fh = open_trace_write(
                    self.directory / f"{stream}{self._suffix}"
                )
                fh.write(_dumps(stream_header(stream)) + "\n")
                self._files[stream] = fh
                buffer = self._buffers[stream] = []
            buffer.append(_dumps(record.to_dict()))
            if len(buffer) >= _BUFFER_LINES:
                self._files[stream].write("\n".join(buffer) + "\n")
                buffer.clear()
        self._track(stream, record)

    def _flush_buffers(self) -> None:
        for stream, buffer in self._buffers.items():
            if buffer:
                self._files[stream].write("\n".join(buffer) + "\n")
                buffer.clear()

    def _track(self, stream: str, record) -> None:
        self._counts[stream] += 1
        if stream == "spans":
            self._max_request_id = max(self._max_request_id, record.trace_id)
            self._max_span_id = max(self._max_span_id, record.span_id)
            self._extent = max(self._extent, record.start)
            if not math.isnan(record.end):
                self._extent = max(self._extent, record.end)
            for annotation in record.annotations:
                self._extent = max(self._extent, annotation.timestamp)
            return
        self._max_request_id = max(self._max_request_id, record.request_id)
        if stream == "requests":
            self._extent = max(
                self._extent, record.arrival_time, record.completion_time
            )
            cls = record.request_class
            self._request_classes[cls] = self._request_classes.get(cls, 0) + 1
        else:
            self._extent = max(self._extent, record.timestamp)

    # -- introspection -------------------------------------------------------

    @property
    def extent(self) -> float:
        """Latest timestamp streamed so far (stitch-extent semantics)."""
        return self._extent

    @property
    def counts(self) -> dict[str, int]:
        return dict(self._counts)

    # -- lifecycle -----------------------------------------------------------

    def finalize(
        self, duration: float = 0.0, extent_floor: Optional[float] = None
    ) -> ShardManifest:
        """Close stream files, write ``manifest.json``, return the manifest.

        ``duration`` is the replica's simulated duration when the caller
        knows it (e.g. ``env.now``); the manifest extent is its max with
        the streamed-record extent, so even a shard with zero records
        keeps its slot on the merged timeline.  A windowed collection
        passes ``extent_floor`` separately — the *absolute* window
        boundary — while ``duration`` stays the per-window delta, since
        window shards carry absolute timestamps but report incremental
        durations.
        """
        if self._finalized:
            raise RuntimeError("shard already finalized")
        self._finalized = True
        self._flush_buffers()
        for fh in self._files.values():
            fh.close()
        self._files.clear()
        self._buffers.clear()
        for writer in self._columns.values():
            writer.close()
        self._columns.clear()
        # Hash the raw stream-file bytes after close: the digest covers
        # exactly what a reader will see — one file per jsonl stream, a
        # combined digest over a columnar stream's header + column
        # buffers — so any later edit or corruption is detectable.
        from .cache import stream_content_hash

        content_hashes = {}
        for stream in sorted(self._counts):
            if not self._counts[stream]:
                continue
            digest = stream_content_hash(self.directory, stream)
            if digest is not None:
                content_hashes[stream] = digest
        manifest = ShardManifest(
            index=self.index,
            app=self.app,
            seed=self.seed,
            params=dict(self.params),
            duration=duration,
            extent=max(
                duration if extent_floor is None else extent_floor,
                self._extent,
            ),
            counts=dict(self._counts),
            max_request_id=self._max_request_id,
            max_span_id=self._max_span_id,
            request_classes=dict(sorted(self._request_classes.items())),
            compress=self.compress,
            codec=self.codec,
            round=self.round,
            continues=self.continues,
            content_hashes=content_hashes,
            tool_version=tool_version(),
        )
        manifest.save(self.directory)
        return manifest

    def __enter__(self) -> "ShardWriter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if not self._finalized:
            if exc_type is None:
                self.finalize()
            else:  # leave no half-valid shard behind a failed replica
                self._buffers.clear()
                for fh in self._files.values():
                    fh.close()
                self._files.clear()
                for writer in self._columns.values():
                    writer.abort()
                self._columns.clear()
