"""A14 — fixing the renewal network model with autocorrelation matching.

A7 measured the paper's "simple queueing model" network component
failing on self-similar traffic (~90% latency deviation): an i.i.d.
interarrival fit cannot reproduce burst clustering.  Li's pipeline
adds a second phase that matches autocorrelations; this bench swaps
KOOZA's arrival model for the Gaussian-copula AR(p) generator and
re-runs the A7 experiment on b-model traffic.

Expected shape: the copula model recovers the burstiness (interarrival
CoV, lag-1 ACF) of the traffic and meaningfully cuts the latency
deviation relative to the renewal model.  It does not close the gap
entirely: an AR(p) copula captures short-range correlation only, and
queueing tails under long-range-dependent input remain sensitive to
structure beyond its horizon (an i.i.d. *empirical* bootstrap, for
contrast, measures the same ~92% deviation as the renewal fit — the
independence assumption, not the fitted family, is what fails).
"""

import numpy as np

from conftest import save_result

from repro.core import (
    KoozaConfig,
    KoozaTrainer,
    ReplayHarness,
    compare_workloads,
    extract_request_features,
)
from repro.datacenter import run_gfs_workload
from repro.queueing import BModelArrivals
from repro.stats import acf, interarrival_cov


def _burstiness(requests):
    arrivals = np.sort([r.arrival_time for r in requests])
    gaps = np.diff(arrivals)
    gaps = gaps[gaps > 0]
    return interarrival_cov(gaps), float(acf(gaps, 1)[1])


def test_ablation_autocorrelated_arrivals(benchmark):
    def run_study():
        rng = np.random.default_rng(51)
        run = run_gfs_workload(
            n_requests=2500,
            seed=37,
            arrivals=BModelArrivals(25.0, rng, bias=0.8),
        )
        rows = []
        for label, arrival_model in (
            ("renewal", "renewal"),
            ("copula-AR", "autocorrelated"),
        ):
            config = KoozaConfig(arrival_model=arrival_model)
            model = KoozaTrainer(config).fit(run.traces)
            synthetic = model.synthesize(2000, np.random.default_rng(9))
            replay = ReplayHarness(seed=41).replay(synthetic)
            report = compare_workloads(run.traces, replay)
            syn_features = extract_request_features(replay)
            cov, lag1 = _burstiness(syn_features)
            rows.append(
                (label, cov, lag1, report.mean_latency_deviation_pct)
            )
        orig_features = extract_request_features(run.traces)
        true_cov, true_lag1 = _burstiness(orig_features)
        return (true_cov, true_lag1), rows

    (true_cov, true_lag1), rows = benchmark.pedantic(
        run_study, rounds=1, iterations=1
    )

    lines = [
        "A14: arrival autocorrelation matching on self-similar traffic",
        f"{'model':>10} | {'interarrival CoV':>16} | {'lag-1 ACF':>9} | "
        f"{'mean lat dev%':>13}",
        "-" * 60,
        f"{'original':>10} | {true_cov:>16.2f} | {true_lag1:>9.3f} | "
        f"{'—':>13}",
    ]
    for label, cov, lag1, dev in rows:
        lines.append(
            f"{label:>10} | {cov:>16.2f} | {lag1:>9.3f} | {dev:>13.2f}"
        )
    save_result("ablation_a14_autocorrelation", "\n".join(lines))

    by_label = {r[0]: r for r in rows}
    renewal = by_label["renewal"]
    copula = by_label["copula-AR"]
    # The renewal model destroys the autocorrelation; the copula keeps
    # a large share of it (and of the burstiness).
    assert abs(renewal[2]) < 0.1
    assert copula[2] > 0.5 * true_lag1
    assert copula[1] > 0.5 * true_cov
    # And the latency fidelity improves meaningfully (though LRD
    # beyond the AR horizon keeps a substantial residual gap).
    assert copula[3] < 0.8 * renewal[3]
