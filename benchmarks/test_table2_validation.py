"""Table 2 — validation of request features and latency (the headline).

The paper trains KOOZA on traces of simplified GFS requests and shows
synthetic requests deviating <1% on request features and 3.7% / 6.6%
on latency for the two user requests (a 64 KiB read with a 16 KiB
memory read, and a 4 MiB write with a 256 KiB memory write).

This bench reruns that experiment on the simulated GFS cluster and
reports paper-vs-measured per profile.  Absolute latencies differ (our
substrate is a simulator, not their testbed); the *shape* must hold:
feature deviations ~0%, op types exact, latency deviations of a few
percent, write slower and more CPU-hungry than read.
"""

import numpy as np
import pytest

from conftest import N_REQUESTS, save_result

from repro.core import KoozaTrainer, ReplayHarness, compare_workloads
from repro.tracing import READ, WRITE

#: The paper's Table 2, for side-by-side reporting.
PAPER = {
    (READ, 16): {
        "network": "64K", "cpu_dev_pp": 0.2, "mem": "16K read",
        "sto": "64K read", "latency_ms": 11.4, "lat_dev_pct": 3.7,
    },
    (WRITE, 22): {
        "network": "4MB", "cpu_dev_pp": 0.5, "mem": "256KB write",
        "sto": "4MB write", "latency_ms": 16.45, "lat_dev_pct": 6.6,
    },
}


def test_table2_train_benchmark(benchmark, gfs_run):
    model = benchmark.pedantic(
        lambda: KoozaTrainer().fit(gfs_run.traces), rounds=1, iterations=1
    )
    assert model.is_fitted()


def test_table2_synthesis_benchmark(benchmark, kooza_model):
    requests = benchmark.pedantic(
        lambda: kooza_model.synthesize(N_REQUESTS, np.random.default_rng(42)),
        rounds=1,
        iterations=1,
    )
    assert len(requests) == N_REQUESTS


def test_table2_replay_benchmark(benchmark, kooza_model):
    requests = kooza_model.synthesize(500, np.random.default_rng(43))
    traces = benchmark.pedantic(
        lambda: ReplayHarness(seed=99).replay(requests), rounds=1, iterations=1
    )
    assert len(traces.completed_requests()) == 500


def test_table2_reproduction(benchmark, gfs_run, kooza_report):
    report = kooza_report
    benchmark(report.to_table)

    lines = [
        "Paper Table 2 vs this reproduction",
        "(feature deviations in %, CPU in percentage points, latency in %)",
        "",
    ]
    for p in sorted(report.profiles, key=lambda p: p.profile):
        paper = PAPER[p.profile]
        lines.extend(
            [
                f"profile {p.profile[0]}@2^{p.profile[1]} "
                f"(paper: {paper['network']} request)",
                f"  network size dev : paper 0.0%   measured "
                f"{p.network_deviation_pct:.2f}%",
                f"  cpu util dev     : paper {paper['cpu_dev_pp']:.1f}pp  "
                f"measured {p.cpu_utilization_deviation_pp:.2f}pp",
                f"  memory size dev  : paper 0.0%   measured "
                f"{p.memory_deviation_pct:.2f}%",
                f"  storage size dev : paper 0.0%   measured "
                f"{p.storage_deviation_pct:.2f}%",
                f"  op types         : paper exact  measured "
                f"mem={p.memory_op_match:.2f} sto={p.storage_op_match:.2f}",
                f"  latency          : paper {paper['latency_ms']:.2f}ms "
                f"(dev {paper['lat_dev_pct']:.1f}%)  measured "
                f"{p.latency[0] * 1e3:.2f}ms (dev "
                f"{p.latency_deviation_pct:.2f}%)",
                "",
            ]
        )
    lines.append(report.to_table())
    save_result("table2_validation", "\n".join(lines))

    # -- shape assertions (the reproduction criteria) -------------------
    assert {p.profile for p in report.profiles} == {(READ, 16), (WRITE, 22)}
    for p in report.profiles:
        assert p.max_feature_deviation_pct < 1.0  # paper: <= 1%
        assert p.cpu_utilization_deviation_pp < 2.0
        assert p.memory_op_match == 1.0
        assert p.storage_op_match == 1.0
        assert p.latency_deviation_pct < 10.0  # paper: <= 6.6%

    by_profile = {p.profile: p for p in report.profiles}
    read, write = by_profile[(READ, 16)], by_profile[(WRITE, 22)]
    # Shape: the 4 MiB write is slower than the 64 KiB read, in both
    # the original and the synthetic workload (paper: 16.45 vs 11.4ms).
    assert write.latency[0] > read.latency[0]
    assert write.latency[1] > read.latency[1]
