"""A12 — analytic vs simulated in-depth models (Liu et al.).

Liu et al. solve the 3-tier model analytically; this repository also
simulates it.  This bench fits the in-depth model from GFS traces,
solves the same station configuration as an open Jackson network, and
compares: analytic vs simulated (product form should agree) vs the
observed application latency (both share the in-depth family's
exponential-service bias).  Closed-loop MVA sizes the same stations
for an interactive population.
"""

import numpy as np

from conftest import save_result

from repro.core import extract_request_features
from repro.depth import InDepthModel
from repro.depth.model import _STATION_SERVERS
from repro.queueing import AnalyticStation, solve_jackson, solve_mva


def test_ablation_analytic_vs_simulated(benchmark, gfs_run):
    features = extract_request_features(gfs_run.traces)
    observed = float(np.mean([f.latency for f in features]))
    span = features[-1].arrival_time - features[0].arrival_time
    rate = len(features) / span

    def solve_all():
        model = InDepthModel().fit(gfs_run.traces)
        demands = model.mean_service_demand()
        visits = {name: model.route.count(name) for name in demands}
        stations = [
            AnalyticStation(
                name,
                visits=visits[name],
                service_time=demands[name],
                servers=_STATION_SERVERS.get(name, 1),
            )
            for name in demands
        ]
        analytic = solve_jackson(stations, rate)
        simulated = float(
            model.predict_latencies(4000, np.random.default_rng(81)).mean()
        )
        mva = solve_mva(stations, n_customers=16, think_time=0.1)
        return analytic, simulated, mva

    analytic, simulated, mva = benchmark.pedantic(
        solve_all, rounds=1, iterations=1
    )

    lines = [
        "A12: in-depth model — analytic vs simulated vs observed",
        f"observed application latency : {observed * 1e3:8.2f} ms "
        f"(at {rate:.1f} req/s)",
        f"Jackson analytic solution    : {analytic.mean_latency * 1e3:8.2f} ms "
        f"(bottleneck: {analytic.bottleneck})",
        f"queueing-network simulation  : {simulated * 1e3:8.2f} ms",
        "",
        f"closed-loop MVA (16 users, 100 ms think): "
        f"X = {mva.throughput:.1f} req/s, R = {mva.response_time * 1e3:.1f} ms",
    ]
    save_result("ablation_a12_analytic", "\n".join(lines))

    # Product-form analytic and the simulation of the same model agree.
    assert analytic.mean_latency == (
        __import__("pytest").approx(simulated, rel=0.25)
    )
    # Both carry the exponential-service bias vs the observed app, but
    # stay within the right scale (the in-depth family's signature).
    assert 0.5 < analytic.mean_latency / observed < 3.0
    assert analytic.bottleneck == "disk"
    assert mva.throughput > 0
