"""Bench: collection throughput — the simulation/tracing hot path.

Every number the paper cross-examines is bought with simulation time,
so the collect path (engine kernel + RNG draws + tracer emission +
shard serialization) is measured here end to end: one replica per app
streaming records to an on-disk shard store, exactly what one
``repro collect`` worker executes.

Two metrics per app:

* **events/sec** — engine steps retired per wall second (kernel cost),
* **records/sec** — trace records serialized to the store per wall
  second (tracer + writer cost).

The speedup is computed against the *pinned pre-optimization baseline*
in ``benchmarks/baselines/collect_baseline.json``, recorded on the
seed kernel by ``benchmarks/record_collect_baseline.py``.  Because the
baseline was timed on one machine and the bench may run on another,
the pinned events/sec are first rescaled by the ratio of calibration
scores (a fixed pure-Python workload timed both then and now) — see
docs/performance.md for the methodology.

Results land in ``benchmarks/results/collect_speed.txt`` and — as the
machine-readable record the acceptance criteria name —
``BENCH_collect.json`` at the repository root.
"""

from __future__ import annotations

import heapq
import json
import math
import time
from pathlib import Path

from conftest import save_result

from repro.datacenter.fleet import ReplicaSpec
from repro.datacenter.session import ReplicaSession
from repro.store.writer import ShardWriter, shard_dirname
from repro.tracing import Tracer

REPO_ROOT = Path(__file__).resolve().parent.parent
BASELINE_PATH = Path(__file__).resolve().parent / "baselines" / "collect_baseline.json"

#: Asserted floor on the calibration-scaled geometric-mean speedup.
SPEEDUP_FLOOR = 1.5
#: The design target recorded in the payload.
SPEEDUP_TARGET = 3.0

SEED = 7
#: Per-app workload sizes (kept small enough for a CI smoke run).
APP_SIZES = {"gfs": 2000, "webapp": 1500, "mapreduce": 0}


def calibration_score(iterations: int = 6) -> float:
    """Machine-speed score: a fixed interpreter-bound workload, ops/sec.

    Deliberately built from the primitives the collect hot path leans
    on (heap scheduling, generator resumption, dict/attribute traffic)
    but *not* from any repro code, so optimizing the kernel cannot
    inflate the score — it moves only with the machine.
    """

    class Node:
        __slots__ = ("value", "other")

        def __init__(self, value):
            self.value = value
            self.other = None

    def producer(n):
        total = 0
        for i in range(n):
            total += yield i
        return total

    def one_round() -> int:
        ops = 0
        heap: list[tuple[float, int]] = []
        push, pop = heapq.heappush, heapq.heappop
        for i in range(20_000):
            push(heap, ((i * 2654435761) % 1000003 / 1e6, i))
            if i % 3 == 0 and heap:
                pop(heap)
            ops += 1
        gen = producer(20_000)
        next(gen)
        try:
            for i in range(20_000):
                gen.send(i)
                ops += 1
        except StopIteration:
            pass
        table: dict[int, int] = {}
        node = Node(0)
        for i in range(20_000):
            table[i & 1023] = table.get(i & 1023, 0) + 1
            node.value += i
            ops += 1
        return ops

    best = math.inf
    total_ops = one_round()  # warm-up, also fixes the op count
    for _ in range(iterations):
        start = time.perf_counter()
        one_round()
        best = min(best, time.perf_counter() - start)
    return total_ops / best


def _measure_app(app: str, tmp_dir: Path, repeats: int = 2) -> dict:
    """Best-of-N timing of one replica collected straight to a store."""
    n_requests = APP_SIZES[app]
    best = None
    for attempt in range(repeats):
        shard_dir = tmp_dir / f"{app}-{attempt}" / shard_dirname(0)
        writer = ShardWriter(shard_dir, 0, app=app, seed=SEED)
        tracer = Tracer(sample_every=1, sink=writer, keep_records=False)
        spec = ReplicaSpec(
            app=app,
            index=0,
            seed=SEED,
            n_requests=n_requests,
            arrival_rate=25.0 if app == "gfs" else 120.0,
            sample_every=1,
        )
        start = time.perf_counter()
        session = ReplicaSession(spec, tracer=tracer)
        session.run_to_completion()
        tracer.close()
        writer.finalize(duration=session.env.now)
        elapsed = time.perf_counter() - start
        events = session.env.steps
        records = sum(tracer.emitted.values())
        if best is None or elapsed < best["seconds"]:
            best = {
                "n_requests": n_requests,
                "events": events,
                "records": records,
                "seconds": elapsed,
                "events_per_sec": events / elapsed,
                "records_per_sec": records / elapsed,
            }
    return best


def measure_all_apps(tmp_dir: Path | None = None) -> dict[str, dict]:
    """Collect-throughput stats for every standard app."""
    import tempfile

    if tmp_dir is not None:
        return {app: _measure_app(app, tmp_dir) for app in APP_SIZES}
    with tempfile.TemporaryDirectory() as td:
        return {app: _measure_app(app, Path(td)) for app in APP_SIZES}


def test_collect_speed(tmp_path):
    assert BASELINE_PATH.exists(), (
        f"pinned baseline missing: {BASELINE_PATH}; run "
        "benchmarks/record_collect_baseline.py on the pre-optimization kernel"
    )
    baseline = json.loads(BASELINE_PATH.read_text())
    calibration = calibration_score()
    # Rescale the pinned numbers to this machine: a box twice as fast
    # as the recording box should also double the baseline throughput.
    scale = calibration / baseline["calibration_score"]

    apps = measure_all_apps(tmp_path)

    per_app = {}
    speedups_events = []
    speedups_records = []
    for app, stats in apps.items():
        base = baseline["apps"][app]
        scaled_events = base["events_per_sec"] * scale
        scaled_records = base["records_per_sec"] * scale
        ev_speedup = stats["events_per_sec"] / scaled_events
        rec_speedup = stats["records_per_sec"] / scaled_records
        speedups_events.append(ev_speedup)
        speedups_records.append(rec_speedup)
        per_app[app] = {
            **stats,
            "baseline_events_per_sec": base["events_per_sec"],
            "baseline_records_per_sec": base["records_per_sec"],
            "scaled_baseline_events_per_sec": scaled_events,
            "scaled_baseline_records_per_sec": scaled_records,
            "events_speedup": ev_speedup,
            "records_speedup": rec_speedup,
        }

    def geomean(values):
        return math.exp(sum(math.log(v) for v in values) / len(values))

    events_geomean = geomean(speedups_events)
    records_geomean = geomean(speedups_records)

    payload = {
        "bench": "collect_speed",
        "seed": SEED,
        "apps": per_app,
        "events_speedup_geomean": events_geomean,
        "records_speedup_geomean": records_geomean,
        "calibration_score": calibration,
        "baseline_calibration_score": baseline["calibration_score"],
        "calibration_scale": scale,
        "speedup_floor": SPEEDUP_FLOOR,
        "speedup_target": SPEEDUP_TARGET,
    }
    (REPO_ROOT / "BENCH_collect.json").write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n"
    )

    lines = [
        f"{'app':<10} {'events/s':>12} {'records/s':>12} "
        f"{'ev-speedup':>11} {'rec-speedup':>12}"
    ]
    for app, stats in per_app.items():
        lines.append(
            f"{app:<10} {stats['events_per_sec']:>12.0f} "
            f"{stats['records_per_sec']:>12.0f} "
            f"{stats['events_speedup']:>10.2f}x "
            f"{stats['records_speedup']:>11.2f}x"
        )
    lines.append(
        f"geomean speedup: events {events_geomean:.2f}x, "
        f"records {records_geomean:.2f}x "
        f"(floor {SPEEDUP_FLOOR}x, target {SPEEDUP_TARGET}x, "
        f"calibration scale {scale:.2f})"
    )
    save_result("collect_speed", "\n".join(lines))

    assert events_geomean >= SPEEDUP_FLOOR, (
        f"collect events/sec geomean speedup {events_geomean:.2f}x fell "
        f"below the asserted floor {SPEEDUP_FLOOR}x "
        f"(per-app: { {a: round(s['events_speedup'], 2) for a, s in per_app.items()} })"
    )
    assert records_geomean >= SPEEDUP_FLOOR, (
        f"collect records/sec geomean speedup {records_geomean:.2f}x fell "
        f"below the asserted floor {SPEEDUP_FLOOR}x"
    )
