"""Table 1 — qualitative comparison of in-breadth, in-depth and KOOZA.

Regenerates the paper's capability matrix and *verifies each claim
against the implementations in this repository* rather than taking the
table on faith: the in-breadth model really cannot express structure,
the in-depth model really exposes no request features, and KOOZA does
both.
"""

import numpy as np

from conftest import save_result

from repro.breadth import InBreadthWorkloadModel
from repro.core import CAPABILITIES, KoozaTrainer, capability_table
from repro.depth import InDepthModel


def test_table1_matrix_rendering(benchmark):
    table = benchmark(capability_table)
    save_result("table1_capabilities", table)
    assert "KOOZA" in table


def test_table1_claims_hold_in_code(benchmark, gfs_run):
    """Check the X marks against actual model behaviour."""

    def build_models():
        breadth = InBreadthWorkloadModel().fit(gfs_run.traces)
        depth = InDepthModel().fit(gfs_run.traces)
        kooza = KoozaTrainer().fit(gfs_run.traces)
        return breadth, depth, kooza

    breadth, depth, kooza = benchmark.pedantic(
        build_models, rounds=1, iterations=1
    )
    by_name = {c.approach: c for c in CAPABILITIES}

    # Request features: breadth and KOOZA can synthesize them.
    rng = np.random.default_rng(0)
    assert by_name["in-breadth"].request_features
    assert breadth.synthesize(5, rng)[0].storage_stage is not None
    assert by_name["KOOZA"].request_features
    assert kooza.synthesize(5, rng)[0].storage_stage is not None
    # In-depth has no feature API at all.
    assert not by_name["in-depth"].request_features
    assert not hasattr(depth, "synthesize")

    # Time dependencies: in-depth learns a route, KOOZA a dependency
    # queue; in-breadth has neither (config flags are forced off).
    assert not by_name["in-breadth"].time_dependencies
    assert breadth.config.use_dependency_queue is False
    assert by_name["in-depth"].time_dependencies
    assert depth.route == ["nic", "cpu", "memory", "disk", "cpu", "nic"]
    assert by_name["KOOZA"].time_dependencies
    assert kooza.dependency_queue.default[0] == "network_rx"

    # Completeness: only KOOZA covers both axes.
    assert [c.approach for c in CAPABILITIES if c.completeness] == ["KOOZA"]
