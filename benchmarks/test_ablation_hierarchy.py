"""A3 — flat vs hierarchical Markov detail.

§4: "the simple Markov Chain can be substituted by a corresponding
hierarchical representation" to convey more detail, at a complexity
cost.  This bench compares the flat storage chain against the
two-level (op -> fine-state) hierarchy on model size and on how well
sampled paths reproduce the state distribution.
"""

import numpy as np

from conftest import save_result

from repro.core import KoozaConfig, KoozaTrainer
from repro.markov import HierarchicalMarkovChain


def _state_distribution(path):
    states, counts = np.unique([repr(s) for s in path], return_counts=True)
    return dict(zip(states, counts / counts.sum()))


def _distribution_l1(a, b):
    keys = set(a) | set(b)
    return sum(abs(a.get(k, 0.0) - b.get(k, 0.0)) for k in keys)


def test_ablation_hierarchy(benchmark, gfs_run):
    def train_both():
        flat = KoozaTrainer(KoozaConfig()).fit(gfs_run.traces)
        hier = KoozaTrainer(
            KoozaConfig(hierarchical_storage=True)
        ).fit(gfs_run.traces)
        return flat, hier

    flat_model, hier_model = benchmark.pedantic(
        train_both, rounds=1, iterations=1
    )
    flat_chain = flat_model.storage_chain
    hier_chain = hier_model.storage_hierarchy
    assert isinstance(hier_chain, HierarchicalMarkovChain)

    rng = np.random.default_rng(4)
    reference = _state_distribution(flat_chain.sample_path(20_000, rng))
    flat_path = flat_chain.sample_path(20_000, np.random.default_rng(5))
    hier_path = hier_chain.sample_path(20_000, np.random.default_rng(5))
    flat_err = _distribution_l1(reference, _state_distribution(flat_path))
    hier_err = _distribution_l1(reference, _state_distribution(hier_path))

    flat_params = flat_chain.n_states * (flat_chain.n_states - 1)
    lines = [
        "A3: flat vs hierarchical storage chain",
        f"{'variant':>13} | {'states':>6} | {'params':>6} | "
        f"{'stationary L1 err':>17}",
        "-" * 55,
        f"{'flat':>13} | {flat_chain.n_states:>6} | {flat_params:>6} | "
        f"{flat_err:>17.3f}",
        f"{'hierarchical':>13} | {hier_chain.n_fine_states:>6} | "
        f"{hier_chain.n_parameters:>6} | {hier_err:>17.3f}",
    ]
    save_result("ablation_a3_hierarchy", "\n".join(lines))

    # The hierarchy spends fewer parameters...
    assert hier_chain.n_parameters < flat_params
    # ...while still reproducing the state mix closely (within 2x the
    # flat chain's own sampling noise, plus slack for the
    # concatenated-visits approximation).
    assert hier_err < max(4 * flat_err, 0.25)
