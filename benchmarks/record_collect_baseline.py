"""Record the pinned collect-throughput baseline for BENCH_collect.

Run this against the *pre-optimization* kernel to pin the baseline that
``benchmarks/test_collect_speed.py`` asserts its speedup against:

    PYTHONPATH=src python benchmarks/record_collect_baseline.py

Writes ``benchmarks/baselines/collect_baseline.json``.  The file also
records a calibration score (a fixed pure-Python workload timed on the
same machine), so the benchmark can rescale the pinned events/sec to
the machine it runs on before comparing — see docs/performance.md.
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

from test_collect_speed import (  # noqa: E402
    BASELINE_PATH,
    calibration_score,
    measure_all_apps,
)


def main() -> None:
    calibration = calibration_score()
    apps = measure_all_apps()
    payload = {
        "calibration_score": calibration,
        "apps": apps,
        "recorded_at": time.strftime("%Y-%m-%d", time.gmtime()),
    }
    BASELINE_PATH.parent.mkdir(parents=True, exist_ok=True)
    BASELINE_PATH.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"wrote {BASELINE_PATH}")
    for app, stats in apps.items():
        print(
            f"  {app}: {stats['events_per_sec']:.0f} events/s, "
            f"{stats['records_per_sec']:.0f} records/s"
        )
    print(f"  calibration: {calibration:.1f}")


if __name__ == "__main__":
    main()
