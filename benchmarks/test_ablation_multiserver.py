"""A6 — scaling to multiple servers.

§4: "Scaling to multiple servers in order to simulate real-application
scenarios requires multiple instances of the model."  The library's
:class:`MultiServerKooza` trains one KOOZA instance per chunkserver
and validates each server's synthetic workload against that server's
original traces; this bench sweeps the cluster size.
"""

import numpy as np

from conftest import save_result

from repro.core import MultiServerKooza
from repro.datacenter import GfsSpec, run_gfs_workload


def test_ablation_multiserver(benchmark):
    def sweep():
        rows = []
        for n_servers in (1, 2, 4):
            run = run_gfs_workload(
                n_requests=1200 * n_servers,
                seed=29,
                arrival_rate=25.0 * n_servers,
                gfs_spec=GfsSpec(chunkservers=n_servers),
            )
            msk = MultiServerKooza().fit(run.traces)
            reports = msk.validate(
                run.traces, np.random.default_rng(40), seed=31
            )
            rows.append(
                (
                    n_servers,
                    msk.n_instances,
                    max(
                        r.worst_feature_deviation_pct
                        for r in reports.values()
                    ),
                    float(
                        np.mean(
                            [
                                r.mean_latency_deviation_pct
                                for r in reports.values()
                            ]
                        )
                    ),
                )
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)

    lines = [
        "A6: per-server model instances vs cluster size (MultiServerKooza)",
        f"{'servers':>7} | {'models':>6} | {'worst feat dev%':>15} | "
        f"{'mean lat dev%':>13}",
        "-" * 55,
    ]
    for n, m, feat, lat in rows:
        lines.append(f"{n:>7} | {m:>6} | {feat:>15.2f} | {lat:>13.2f}")
    save_result("ablation_a6_multiserver", "\n".join(lines))

    for n_servers, trained, feat, lat in rows:
        assert trained == n_servers  # one instance per server
        assert feat < 1.0  # feature fidelity independent of scale
        assert lat < 20.0
