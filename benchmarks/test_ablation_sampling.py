"""A4 — Dapper-style trace-sampling rate.

Dapper samples 1 in 1000 requests and still supports whole-system
analysis (<1.5% overhead).  This bench sweeps the sampling rate and
measures (a) span-collection volume (the overhead proxy), (b) whether
the dependency queue is still recovered, and (c) KOOZA's end fidelity
when trained on the sampled traces.
"""

import numpy as np

from conftest import save_result

from repro.core import KoozaTrainer, ReplayHarness, compare_workloads
from repro.datacenter import run_gfs_workload

FIGURE1 = (
    "network_rx",
    "cpu_lookup",
    "memory",
    "storage",
    "cpu_aggregate",
    "network_tx",
)


def test_ablation_sampling_rate(benchmark):
    def sweep():
        rows = []
        for sample_every in (1, 10, 100):
            run = run_gfs_workload(
                n_requests=3000, seed=19, sample_every=sample_every
            )
            model = KoozaTrainer().fit(run.traces)
            replay = ReplayHarness(seed=23).replay(
                model.synthesize(1500, np.random.default_rng(6))
            )
            report = compare_workloads(run.traces, replay)
            rows.append(
                (
                    sample_every,
                    len(run.traces.spans),
                    model.dependency_queue.default == FIGURE1,
                    report.worst_feature_deviation_pct,
                    report.mean_latency_deviation_pct,
                )
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)

    lines = [
        "A4: trace sampling rate (3000 requests)",
        f"{'1-in-N':>6} | {'spans':>6} | {'structure?':>10} | "
        f"{'worst feat dev%':>15} | {'mean lat dev%':>13}",
        "-" * 65,
    ]
    for n, spans, ok, feat, lat in rows:
        lines.append(
            f"{n:>6} | {spans:>6} | {str(ok):>10} | {feat:>15.2f} | "
            f"{lat:>13.2f}"
        )
    save_result("ablation_a4_sampling", "\n".join(lines))

    # Span volume drops with the sampling rate...
    assert rows[0][1] > 5 * rows[1][1] > 5 * rows[2][1]
    # ...structure and feature fidelity survive (Dapper's argument):
    for _, _, structure_ok, feat, lat in rows:
        assert structure_ok
        assert feat < 1.0
        assert lat < 15.0
