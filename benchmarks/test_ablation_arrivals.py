"""A7 — arrival-process realism (Sengupta et al.).

"Accurate modeling of network traffic, which most of the time diverges
from the commonly-used Poisson distribution, can lead to improved
decision making."  This bench drives the same GFS cluster with
Poisson, MMPP (bursty) and b-model (self-similar) arrivals at equal
mean rate and reports how traffic character changes tail latency, and
where KOOZA's renewal arrival model holds (Poisson, MMPP) versus
breaks (self-similar traffic — no i.i.d. interarrival fit reproduces
burst clustering, which is precisely Sengupta et al.'s warning).
"""

import numpy as np

from conftest import save_result

from repro.core import KoozaTrainer, ReplayHarness, compare_workloads
from repro.datacenter import run_gfs_workload
from repro.queueing import BModelArrivals, MMPPArrivals, PoissonArrivals
from repro.stats import interarrival_cov


def test_ablation_arrival_processes(benchmark):
    rate = 25.0

    def sweep():
        rows = []
        processes = {
            "poisson": lambda rng: PoissonArrivals(rate, rng),
            "mmpp": lambda rng: MMPPArrivals(
                [rate / 3, rate * 3], [1.5, 0.5], rng
            ),
            "b-model": lambda rng: BModelArrivals(rate, rng, bias=0.8),
        }
        for name, factory in processes.items():
            rng = np.random.default_rng(51)
            run = run_gfs_workload(
                n_requests=2500, seed=37, arrivals=factory(rng)
            )
            completed = run.traces.completed_requests()
            arrivals = np.sort([r.arrival_time for r in completed])
            gaps = np.diff(arrivals)
            latencies = np.array([r.latency for r in completed])

            model = KoozaTrainer().fit(run.traces)
            replay = ReplayHarness(seed=41).replay(
                model.synthesize(2000, np.random.default_rng(9))
            )
            report = compare_workloads(run.traces, replay)
            rows.append(
                (
                    name,
                    interarrival_cov(gaps[gaps > 0]),
                    float(np.percentile(latencies, 99) * 1e3),
                    float(np.mean(latencies) * 1e3),
                    report.mean_latency_deviation_pct,
                )
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)

    lines = [
        "A7: arrival-process realism at equal mean rate (25 req/s)",
        f"{'process':>8} | {'interarrival CoV':>16} | {'p99 lat ms':>10} | "
        f"{'mean lat ms':>11} | {'KOOZA lat dev%':>14}",
        "-" * 72,
    ]
    for name, cov, p99, mean, dev in rows:
        lines.append(
            f"{name:>8} | {cov:>16.2f} | {p99:>10.2f} | {mean:>11.2f} | "
            f"{dev:>14.2f}"
        )
    save_result("ablation_a7_arrivals", "\n".join(lines))

    by_name = {r[0]: r for r in rows}
    # Burstier processes (CoV > 1) inflate tail latency at equal load —
    # the reason Poisson assumptions mislead provisioning.
    assert by_name["mmpp"][1] > 1.2
    assert by_name["b-model"][1] > 1.5
    assert by_name["mmpp"][2] > by_name["poisson"][2]
    assert by_name["b-model"][2] > by_name["poisson"][2]
    # KOOZA's renewal (i.i.d.-interarrival) network model holds for
    # Poisson and even MMPP traffic...
    assert by_name["poisson"][4] < 25.0
    assert by_name["mmpp"][4] < 35.0
    # ...but breaks down under self-similar traffic, whose burst
    # clustering no i.i.d. fit can reproduce — Sengupta et al.'s point,
    # measured: the deviation must be visibly worse than Poisson's.
    assert by_name["b-model"][4] > 2 * by_name["poisson"][4]
