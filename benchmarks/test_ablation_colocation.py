"""A16 — colocation interference and serving QoS (paper §5).

§5 motivates "the effects of a heterogeneous processor or memory
system in Quality of Service (QoS) and TCO" and studies "involving
multiple machines servicing the same request".  A canonical DC
question in that space: what does colocating batch (MapReduce) work on
serving machines do to serving tail latency?

This bench runs the GFS serving workload alone and colocated with a
stream of MapReduce jobs on the *same machines*, comparing latency
distributions.  Expected shape: means degrade some, tails degrade
much more — the classic interference signature that motivates
QoS-aware scheduling.
"""

import numpy as np

from conftest import save_result

from repro.datacenter import (
    GfsCluster,
    GfsSpec,
    MapReduceCluster,
    MapReduceJob,
    MapReduceSpec,
)
from repro.queueing import PoissonArrivals
from repro.simulation import Environment, RandomStreams
from repro.tracing import Tracer
from repro.workloads import OpenLoopClient, table2_mix

N_SERVING = 1500
SERVING_RATE = 40.0
N_MACHINES = 2


def _run(colocated: bool):
    env = Environment()
    tracer = Tracer()
    streams = RandomStreams(61)
    gfs = GfsCluster(
        env, GfsSpec(chunkservers=N_MACHINES), streams, tracer
    )
    mix = table2_mix(streams.get("mix"))
    client = OpenLoopClient(
        env,
        gfs.client_request,
        mix.make_request,
        PoissonArrivals(SERVING_RATE, streams.get("arrivals")),
    )
    client.start(N_SERVING)

    if colocated:
        batch = MapReduceCluster(
            env,
            MapReduceSpec(workers=N_MACHINES),
            streams,
            tracer,
            machines=gfs.chunkservers,  # same physical machines
        )

        def batch_driver(env):
            rng = streams.get("batch/jobs")
            for i in range(12):
                job = MapReduceJob(
                    name=f"batch-{i}",
                    input_bytes=int(rng.integers(64, 192)) << 20,
                    n_map=4,
                    n_reduce=2,
                )
                yield env.process(batch.run_job(job))

        env.process(batch_driver(env))

    env.run()
    latencies = np.array(
        [
            r.latency
            for r in tracer.traces.completed_requests()
            if r.request_class in ("read_64K", "write_4M")
        ]
    )
    return latencies


def test_ablation_colocation_qos(benchmark):
    def run_both():
        return _run(colocated=False), _run(colocated=True)

    alone, colocated = benchmark.pedantic(run_both, rounds=1, iterations=1)

    def row(name, lat):
        return (
            name,
            float(np.mean(lat)) * 1e3,
            float(np.percentile(lat, 95)) * 1e3,
            float(np.percentile(lat, 99)) * 1e3,
        )

    rows = [row("serving alone", alone), row("with batch", colocated)]
    mean_blowup = rows[1][1] / rows[0][1]
    p99_blowup = rows[1][3] / rows[0][3]
    lines = [
        "A16: batch colocation vs serving QoS "
        f"({N_MACHINES} machines, {SERVING_RATE:.0f} req/s serving)",
        f"{'scenario':>14} | {'mean ms':>8} | {'p95 ms':>8} | {'p99 ms':>8}",
        "-" * 48,
    ]
    for name, mean, p95, p99 in rows:
        lines.append(f"{name:>14} | {mean:>8.2f} | {p95:>8.2f} | {p99:>8.2f}")
    lines.append(
        f"interference: mean x{mean_blowup:.1f}, p99 x{p99_blowup:.1f} "
        "(tails degrade disproportionately)"
    )
    save_result("ablation_a16_colocation", "\n".join(lines))

    # Colocation hurts, and hurts the tail more than the mean.
    assert mean_blowup > 1.1
    assert p99_blowup > mean_blowup
