"""A13 — in-depth-only studies: bottleneck and error detection.

Table 1's sharpest argument for request-level tracing: "studies that
involve identifying performance bottlenecks for a specific job,
performing error detection ... are only possible with an in-depth
modeling scheme."  We degrade one device (a sick disk) and measure
whether span-level data localizes the fault — and confirm the
subsystem-marginal (in-breadth) view of the same incident is far
weaker evidence.
"""

import numpy as np

from conftest import save_result

from repro.datacenter import MachineSpec, run_gfs_workload
from repro.datacenter.devices import DiskSpec
from repro.depth import AnomalyDetector
from repro.stats import ks_two_sample

HEALTHY_DISK = DiskSpec()
SICK_DISK = DiskSpec(min_seek=1.6e-3, max_seek=32e-3, write_cache=False)


def _traces(disk, seed):
    return run_gfs_workload(
        n_requests=600, seed=seed, machine_spec=MachineSpec(disk=disk)
    ).traces


def test_ablation_anomaly_detection(benchmark):
    def run_study():
        healthy = _traces(HEALTHY_DISK, seed=81)
        degraded = _traces(SICK_DISK, seed=82)
        detector = AnomalyDetector(threshold_sigmas=4.0).fit(
            healthy.trace_trees()
        )
        false_alarms = detector.scan(healthy.trace_trees())
        detections = detector.scan(degraded.trace_trees())
        return healthy, degraded, detector, false_alarms, detections

    healthy, degraded, detector, false_alarms, detections = (
        benchmark.pedantic(run_study, rounds=1, iterations=1)
    )
    n = len(degraded.trace_trees())
    detection_rate = len(detections) / n
    false_rate = len(false_alarms) / len(healthy.trace_trees())
    suspects = [v.worst_stage for v in detections]
    localized = (
        suspects.count("storage") / len(suspects) if suspects else 0.0
    )

    # The in-breadth view of the same incident: whole-run latency
    # distributions differ, but nothing localizes the fault.
    healthy_latencies = [r.latency for r in healthy.completed_requests()]
    degraded_latencies = [r.latency for r in degraded.completed_requests()]
    ks, _ = ks_two_sample(healthy_latencies, degraded_latencies)

    lines = [
        "A13: error detection & fault localization from span traces",
        f"degraded device: disk (4x seeks, write cache off)",
        f"  per-request detection rate : {detection_rate * 100:5.1f}%",
        f"  false-alarm rate (healthy) : {false_rate * 100:5.1f}%",
        f"  fault localized to storage : {localized * 100:5.1f}% of detections",
        f"  learned bottleneck stage   : {detector.bottleneck().stage}",
        "",
        "in-breadth view of the same incident (aggregate only):",
        f"  latency-distribution KS = {ks:.2f} — detects *something* changed,",
        "  but carries no per-stage signal to localize the fault.",
    ]
    save_result("ablation_a13_anomaly", "\n".join(lines))

    assert detection_rate > 0.2
    assert false_rate < 0.05
    assert localized > 0.8
