"""A5 — feature-space dimensionality reduction with PCA.

§4: "we can reduce the dimensionality of feature-space, to the ones
necessary for a representative and succinct model, using techniques
like PCA, SVD, sampling, or regression analysis."  This bench builds
the per-request feature matrix, sweeps the retained components, and
reports explained variance and reconstruction error — showing a
2-3-component model already captures this workload.
"""

import numpy as np

from conftest import save_result

from repro.core import extract_request_features
from repro.stats import PCA


def _feature_matrix(features):
    return np.array(
        [
            [
                f.network_bytes,
                f.cpu_busy,
                f.memory_bytes,
                f.storage_bytes,
                abs(f.storage_delta),
                f.latency,
            ]
            for f in features
        ],
        dtype=float,
    )


def test_ablation_pca_reduction(benchmark, gfs_run):
    features = extract_request_features(gfs_run.traces)
    X = _feature_matrix(features)
    # Standardize: bytes and seconds live on wildly different scales.
    X = (X - X.mean(axis=0)) / np.where(X.std(axis=0) > 0, X.std(axis=0), 1.0)

    def sweep():
        rows = []
        for k in (1, 2, 3, 6):
            pca = PCA(k).fit(X)
            rows.append(
                (
                    k,
                    float(np.sum(pca.explained_variance_ratio_)),
                    pca.reconstruction_error(X),
                )
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)

    lines = [
        "A5: PCA feature-space reduction (6 raw per-request features)",
        f"{'components':>10} | {'explained var':>13} | {'recon MSE':>10}",
        "-" * 42,
    ]
    for k, evr, mse in rows:
        lines.append(f"{k:>10} | {evr:>13.3f} | {mse:>10.4f}")
    save_result("ablation_a5_pca", "\n".join(lines))

    # Monotone improvement, and near-total capture at full rank.
    evrs = [r[1] for r in rows]
    mses = [r[2] for r in rows]
    assert evrs == sorted(evrs)
    assert mses == sorted(mses, reverse=True)
    assert evrs[-1] > 0.999
    # The workload is two request classes: a couple of components carry
    # most of the variance.
    assert evrs[1] > 0.6
