"""Figure 2 — the complete workload model for one user request.

The paper's Figure 2 shows the trained model: a CPU-utilization Markov
chain, an LBN-based storage chain, a bank-based memory chain, a
network arrival queue, and the dependency queue serializing them.
This bench renders the trained model and checks every structural
element of the figure is present and correctly shaped.
"""

from conftest import save_result

from repro.tracing import READ, WRITE


def test_figure2_model_structure(benchmark, kooza_model):
    text = benchmark(kooza_model.describe)
    save_result("figure2_model", text)

    # Four subsystem models + the queue, as drawn in Figure 2.
    for part in ("[network]", "[cpu]", "[memory]", "[storage]",
                 "DependencyQueue"):
        assert part in text


def test_figure2_cpu_chain_states(kooza_model, benchmark):
    """Figure 2's processor model: states are CPU-utilization levels."""
    chain = benchmark.pedantic(
        lambda: kooza_model.cpu_chain, rounds=1, iterations=1
    )
    assert 2 <= chain.n_states <= kooza_model.config.cpu_utilization_bins
    for state in chain.states:
        rep = kooza_model.cpu_utilization.representative(state)
        assert 0.0 <= rep <= 1.0


def test_figure2_storage_chain_states(kooza_model, benchmark):
    """Figure 2's storage model: LBN-locality states with op + size."""
    chain = benchmark.pedantic(
        lambda: kooza_model.storage_chain, rounds=1, iterations=1
    )
    ops = {state[0] for state in chain.states}
    assert ops == {READ, WRITE}
    sizes = {
        int(kooza_model.storage_sizes.representative(state[1]))
        for state in chain.states
    }
    assert 64 * 1024 in sizes and (4 << 20) in sizes


def test_figure2_memory_chain_states(kooza_model, benchmark):
    """Figure 2's memory model: bank-granularity states."""
    chain = benchmark.pedantic(
        lambda: kooza_model.memory_chain, rounds=1, iterations=1
    )
    banks = {state[2] for state in chain.states}
    assert len(banks) >= 2  # the rotating buffer pool hits many banks
    assert all(0 <= b < 8 for b in banks)


def test_figure2_network_queue(kooza_model, benchmark):
    """Figure 2's network model: an arrival queue, not a Markov chain."""
    gaps = benchmark.pedantic(
        lambda: kooza_model.arrival_gaps, rounds=1, iterations=1
    )
    assert gaps is not None and gaps.size > 100
    # The workload is open-loop Poisson at 25 req/s.
    rate = 1.0 / gaps.mean()
    assert 15.0 < rate < 35.0


def test_figure2_transition_matrices_stochastic(kooza_model, benchmark):
    import numpy as np

    def check():
        for chain in (
            kooza_model.network_chain,
            kooza_model.cpu_chain,
            kooza_model.memory_chain,
            kooza_model.storage_chain,
        ):
            rows = chain.transition_matrix.sum(axis=1)
            assert np.allclose(rows, 1.0)
        return True

    assert benchmark(check)
