"""A10 — the performance & power model (paper §5).

"The CPU and memory models can be used to evaluate different processor
options, given the increased interest in small-core usage for energy
efficiency in the DC."  We replay the same KOOZA-modeled workload on a
baseline server and a small-core (wimpy) server, and account energy
with the utilization-linear power model: for this disk-bound workload
the wimpy configuration saves energy per request at a modest latency
penalty — the small-core argument, measured end to end without
touching the original application.
"""

import numpy as np

from conftest import save_result

from repro.core import ReplayHarness, extract_request_features
from repro.datacenter import MachinePowerSpec, MachineSpec, PowerModel
from repro.datacenter.devices import CpuSpec

BASELINE_POWER = MachinePowerSpec()
#: A low-power part: much lower peak and idle draw.
WIMPY_POWER = MachinePowerSpec(cpu_idle=20.0, cpu_peak=60.0, platform=35.0)


def test_ablation_power_efficiency(benchmark, kooza_model):
    synthetic = kooza_model.synthesize(1500, np.random.default_rng(71))

    def run_configs():
        rows = []
        configs = (
            ("baseline", MachineSpec(), BASELINE_POWER),
            (
                "wimpy-core",
                MachineSpec(cpu=CpuSpec(speed_factor=0.4)),
                WIMPY_POWER,
            ),
        )
        for name, machine_spec, power_spec in configs:
            harness = ReplayHarness(machine_spec=machine_spec, seed=73)
            traces = harness.replay(synthetic)
            features = extract_request_features(traces)
            latency = float(np.mean([f.latency for f in features]))
            model = PowerModel(power_spec)
            report = model.report(harness.machines[0])
            joules = model.energy_per_request(
                harness.machines, len(features)
            )
            rows.append((name, latency * 1e3, report.mean_power, joules))
        return rows

    rows = benchmark.pedantic(run_configs, rounds=1, iterations=1)

    lines = [
        "A10: energy efficiency via the performance & power model",
        f"{'config':>11} | {'mean lat ms':>11} | {'mean watts':>10} | "
        f"{'J/request':>9}",
        "-" * 52,
    ]
    for name, lat, watts, joules in rows:
        lines.append(
            f"{name:>11} | {lat:>11.2f} | {watts:>10.1f} | {joules:>9.3f}"
        )
    baseline, wimpy = rows
    penalty = (wimpy[1] - baseline[1]) / baseline[1] * 100
    saving = (baseline[3] - wimpy[3]) / baseline[3] * 100
    lines.append(
        f"wimpy cores: {penalty:+.1f}% latency, {saving:.1f}% energy/request"
    )
    save_result("ablation_a10_power", "\n".join(lines))

    # Disk-bound workload: small cores cost little latency...
    assert penalty < 30.0
    # ...and save substantial energy per request.
    assert saving > 15.0
    assert wimpy[2] < baseline[2]
