"""Figure 1 — the GFS structure diagram for a user request.

The paper's Figure 1 shows a request flowing Network -> CPU (+Memory)
-> Disk -> CPU -> Network through a chunkserver.  This bench verifies
the reproduction recovers exactly that structure from Dapper-style
span traces — the input to KOOZA's time-dependency queue — and that
the recovery is robust to trace sampling.
"""

from conftest import save_result

from repro.core import mine_dependency_queue
from repro.datacenter import run_gfs_workload

#: Figure 1's stage order, with CPU/memory expanded to this
#: repository's span names.
FIGURE1 = (
    "network_rx",
    "cpu_lookup",
    "memory",
    "storage",
    "cpu_aggregate",
    "network_tx",
)


def test_figure1_structure_recovery(benchmark, gfs_run):
    trees = gfs_run.traces.trace_trees()
    queue = benchmark(mine_dependency_queue, trees)
    lines = [
        "Figure 1: GFS structure for one user request",
        "paper   : Network -> CPU -> Memory -> Disk -> CPU -> Network",
        "recovered: " + " -> ".join(queue.default),
        f"mined from {len(trees)} traced requests",
    ]
    save_result("figure1_structure", "\n".join(lines))
    assert queue.default == FIGURE1


def test_figure1_stable_under_sampling(benchmark):
    """Dapper samples 1/1000 requests; structure must still be found."""

    def mine_sampled():
        run = run_gfs_workload(n_requests=3000, seed=17, sample_every=100)
        return run, mine_dependency_queue(run.traces.trace_trees())

    run, queue = benchmark.pedantic(mine_sampled, rounds=1, iterations=1)
    assert len(run.traces.spans) < len(run.traces.requests) * 7 / 10
    assert queue.default == FIGURE1


def test_figure1_request_latency_decomposition(benchmark, gfs_run):
    """The storage stage dominates request latency (why Figure 1's
    disk box is the heart of the chunkserver)."""

    def decompose():
        totals: dict[str, float] = {}
        for tree in gfs_run.traces.trace_trees():
            for span in tree.walk():
                if span.parent_id is not None:
                    totals[span.name] = totals.get(span.name, 0.0) + span.duration
        return totals

    totals = benchmark(decompose)
    data_path = {k: v for k, v in totals.items() if k != "master_lookup"}
    dominant = max(data_path, key=data_path.get)
    lines = ["Per-stage time share across all requests:"]
    total = sum(data_path.values())
    for name, value in sorted(data_path.items(), key=lambda kv: -kv[1]):
        lines.append(f"  {name:>14}: {value / total * 100:5.1f}%")
    save_result("figure1_decomposition", "\n".join(lines))
    assert dominant in ("storage", "network_rx")
