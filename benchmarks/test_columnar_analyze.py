"""Bench: columnar codec — cold characterize throughput vs JSONL.

The columnar codec exists to take per-record Python dispatch out of the
cold analysis path: instead of ``json.loads`` + ``from_dict`` + field
extraction per record, shards decode straight to numpy column buffers
that feed the vectorized accumulator folds.  Two claims back it:

* **Equality** — the cold profile computed over the columnar store
  equals the cold profile over the JSONL store it was converted from,
  exactly (dataclass ``==``, which compares every accumulator-derived
  summary field).
* **Speedup** — a cold ``analyze_source`` over the columnar store must
  be at least 3x faster than over the JSONL store (the acceptance
  floor; the design target is 10x, recorded in the payload).

Results land in ``benchmarks/results/columnar_analyze.txt`` and — as
the machine-readable record the acceptance criteria name —
``BENCH_columnar_analyze.json`` at the repository root.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from conftest import save_result

from repro.datacenter import FleetSpec, collect_fleet_to_store
from repro.store import ShardStore, analyze_source, convert_store

REPO_ROOT = Path(__file__).resolve().parent.parent

REPLICAS = 4
N_REQUESTS = 3000
SEED = 7
SPEEDUP_FLOOR = 3.0
SPEEDUP_TARGET = 10.0


def _time_cold(directory) -> tuple[float, object]:
    """Best-of-two cold analysis time (no cache, single process)."""
    best = None
    analysis = None
    for _ in range(2):
        start = time.perf_counter()
        analysis = analyze_source(directory, cache=False)
        elapsed = time.perf_counter() - start
        best = elapsed if best is None else min(best, elapsed)
    return best, analysis


def test_columnar_cold_analyze_speedup(tmp_path):
    jsonl_dir = tmp_path / "jsonl"
    spec = FleetSpec(
        app="gfs", replicas=REPLICAS, seed=SEED, n_requests=N_REQUESTS
    )
    collect_fleet_to_store(spec, directory=jsonl_dir)
    columnar_dir = tmp_path / "columnar"
    convert_store(jsonl_dir, columnar_dir, codec="columnar")

    n_records = sum(
        sum(m.counts.values()) for m in ShardStore(jsonl_dir).manifests
    )

    t_jsonl, jsonl_analysis = _time_cold(jsonl_dir)
    t_columnar, columnar_analysis = _time_cold(columnar_dir)

    assert columnar_analysis.profile == jsonl_analysis.profile, (
        "columnar cold profile must equal the JSONL cold profile exactly"
    )

    speedup = t_jsonl / t_columnar
    records_per_sec_jsonl = n_records / t_jsonl
    records_per_sec_columnar = n_records / t_columnar

    payload = {
        "bench": "columnar_analyze",
        "app": spec.app,
        "replicas": REPLICAS,
        "n_requests": N_REQUESTS,
        "seed": SEED,
        "n_records": n_records,
        "jsonl_cold_seconds": round(t_jsonl, 4),
        "columnar_cold_seconds": round(t_columnar, 4),
        "jsonl_records_per_sec": round(records_per_sec_jsonl),
        "columnar_records_per_sec": round(records_per_sec_columnar),
        "speedup": round(speedup, 2),
        "speedup_floor": SPEEDUP_FLOOR,
        "speedup_target": SPEEDUP_TARGET,
        "meets_target": speedup >= SPEEDUP_TARGET,
        "profiles_equal": True,
    }
    (REPO_ROOT / "BENCH_columnar_analyze.json").write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n"
    )

    lines = [
        f"replicas={REPLICAS} n_requests={N_REQUESTS} seed={SEED} "
        f"records={n_records}",
        f"{'codec':>9} | {'cold s':>8} | {'records/s':>10}",
        f"{'jsonl':>9} | {t_jsonl:>8.4f} | {records_per_sec_jsonl:>10.0f}",
        f"{'columnar':>9} | {t_columnar:>8.4f} | "
        f"{records_per_sec_columnar:>10.0f}",
        f"speedup: {speedup:.1f}x  (floor {SPEEDUP_FLOOR:.0f}x, "
        f"target {SPEEDUP_TARGET:.0f}x)",
        "columnar profile equals jsonl profile: yes",
    ]
    save_result("columnar_analyze", "\n".join(lines))

    assert speedup >= SPEEDUP_FLOOR, (
        f"columnar cold analysis should be >= {SPEEDUP_FLOOR}x faster than "
        f"JSONL, got {speedup:.2f}x"
    )
