"""A1 — quantitative Table 1: the three approaches head-to-head.

The paper's comparison is qualitative; this bench makes it
quantitative on the same workload: per-profile feature fidelity,
cross-subsystem correlation fidelity, and latency fidelity for the
in-breadth baseline, the in-depth baseline, and KOOZA.

Expected shape (the paper's argument):
* in-breadth keeps subsystem marginals but destroys joint features
  and per-profile coherence;
* in-depth gets latency scale right but has no features at all;
* KOOZA achieves both.
"""

import numpy as np

from conftest import N_REQUESTS, save_result

from repro.breadth import InBreadthWorkloadModel
from repro.core import ReplayHarness, compare_workloads, extract_request_features
from repro.depth import InDepthModel


def test_ablation_model_comparison(benchmark, gfs_run, kooza_report):
    rng = np.random.default_rng(1)
    original = extract_request_features(gfs_run.traces)
    original_latency = np.mean([f.latency for f in original])

    def run_baselines():
        breadth = InBreadthWorkloadModel().fit(gfs_run.traces)
        breadth_replay = ReplayHarness(seed=11).replay(
            breadth.synthesize(N_REQUESTS, rng)
        )
        breadth_report = compare_workloads(
            gfs_run.traces, breadth_replay, min_profile_count=1
        )
        depth = InDepthModel().fit(gfs_run.traces)
        depth_latency = depth.predict_latencies(N_REQUESTS, rng).mean()
        return breadth_report, depth_latency

    breadth_report, depth_latency = benchmark.pedantic(
        run_baselines, rounds=1, iterations=1
    )
    kooza = kooza_report
    depth_latency_dev = (
        abs(depth_latency - original_latency) / original_latency * 100
    )

    lines = [
        "A1: quantitative model comparison (GFS workload)",
        f"{'approach':>11} | {'worst feat dev%':>15} | "
        f"{'joint-corr err':>14} | {'latency dev%':>12} | features?",
        "-" * 70,
        f"{'in-breadth':>11} | {breadth_report.worst_feature_deviation_pct:>15.1f} | "
        f"{breadth_report.joint_correlation_error:>14.3f} | "
        f"{breadth_report.mean_latency_deviation_pct:>12.2f} | marginals only",
        f"{'in-depth':>11} | {'n/a':>15} | {'n/a':>14} | "
        f"{depth_latency_dev:>12.2f} | none",
        f"{'KOOZA':>11} | {kooza.worst_feature_deviation_pct:>15.2f} | "
        f"{kooza.joint_correlation_error:>14.3f} | "
        f"{kooza.mean_latency_deviation_pct:>12.2f} | full joint",
    ]
    save_result("ablation_a1_model_comparison", "\n".join(lines))

    # Shape assertions: who wins on what.
    assert kooza.worst_feature_deviation_pct < 1.0
    assert kooza.joint_correlation_error < 0.1
    # In-breadth mixes profiles: per-profile feature error explodes and
    # the network-storage correlation collapses.
    assert (
        breadth_report.worst_feature_deviation_pct
        > 50 * max(kooza.worst_feature_deviation_pct, 0.1)
    )
    assert breadth_report.joint_correlation_error > 0.5
    # In-depth predicts latency within the right scale but worse than
    # KOOZA's replay (exponential service assumption).
    assert depth_latency_dev < 60.0
    assert kooza.mean_latency_deviation_pct < depth_latency_dev
