"""Shared fixtures for the reproduction benches.

Each bench regenerates one table or figure of the paper (or one
ablation) and writes its reproduction output to
``benchmarks/results/<name>.txt`` so the rows survive the pytest run.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np
import pytest

from repro.core import KoozaTrainer, ReplayHarness, compare_workloads
from repro.datacenter import run_gfs_workload

RESULTS_DIR = Path(__file__).parent / "results"

#: One canonical trace-collection run shared by most benches.
N_REQUESTS = 2000
SEED = 7


def save_result(name: str, text: str) -> None:
    """Persist a bench's reproduction table and echo it to stdout."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n")
    print(f"\n=== {name} ===\n{text}\n")


@pytest.fixture(scope="session")
def gfs_run():
    """The canonical GFS trace-collection run (Table 2's workload)."""
    return run_gfs_workload(n_requests=N_REQUESTS, seed=SEED)


@pytest.fixture(scope="session")
def kooza_model(gfs_run):
    return KoozaTrainer().fit(gfs_run.traces)


@pytest.fixture(scope="session")
def kooza_report(gfs_run, kooza_model):
    synthetic = kooza_model.synthesize(N_REQUESTS, np.random.default_rng(42))
    replayed = ReplayHarness(seed=99).replay(synthetic)
    return compare_workloads(gfs_run.traces, replayed)
