"""Bench: sharded fleet collection — equivalence and wall-clock scaling.

Two claims back the parallel runner:

* **Equivalence** — the merged TraceSet for ``workers=1`` (inline, no
  pool) and ``workers=4`` (real process pool) is record-for-record
  identical, because each replica's randomness is a pure function of
  ``(seed, replica index)`` through the fixed ``RandomStreams`` segment
  encoding.  This is asserted unconditionally.
* **Scaling** — fanning replicas across processes beats the
  single-process loop.  Wall-clock numbers are recorded on every
  machine; the speedup assertion only applies where it can physically
  hold (>= 4 CPU cores — a single-core container can only timeshare
  the pool and pays pure fork/pickle overhead).
"""

from __future__ import annotations

import os
import time

from conftest import save_result

from repro.datacenter import FleetSpec, collect_fleet

REPLICAS = 8
N_REQUESTS = 1500
SEED = 7


def _run(workers: int):
    spec = FleetSpec(app="gfs", replicas=REPLICAS, seed=SEED, n_requests=N_REQUESTS)
    start = time.perf_counter()
    result = collect_fleet(spec, workers=workers)
    return result, time.perf_counter() - start


def test_parallel_collect_equivalence_and_scaling():
    cores = os.cpu_count() or 1
    serial, t_serial = _run(workers=1)
    pooled, t_pooled = _run(workers=4)

    # -- equivalence: identical merged records for any worker count ------
    for stream in ("network", "cpu", "memory", "storage", "requests", "spans"):
        a = [r.to_dict() for r in getattr(serial.traces, stream)]
        b = [r.to_dict() for r in getattr(pooled.traces, stream)]
        assert a == b, f"{stream} records diverged between worker counts"

    total_requests = len(serial.traces.requests)
    speedup = t_serial / t_pooled if t_pooled > 0 else float("inf")
    lines = [
        f"replicas={REPLICAS} n_requests={N_REQUESTS} seed={SEED} "
        f"cores={cores}",
        f"merged records: requests={total_requests} "
        f"spans={len(serial.traces.spans)}",
        f"workers=1: {t_serial:.3f}s wall",
        f"workers=4: {t_pooled:.3f}s wall",
        f"speedup: {speedup:.2f}x",
        "merged traces identical across worker counts: yes",
    ]
    save_result("parallel_collect", "\n".join(lines))

    # -- scaling: only meaningful with real parallel hardware ------------
    if cores >= 4:
        assert speedup > 1.2, (
            f"expected multi-worker speedup on {cores} cores, got "
            f"{speedup:.2f}x ({t_serial:.3f}s -> {t_pooled:.3f}s)"
        )
