"""A9 — layered vs flat queueing networks (Franks et al.).

The paper: LQNs "demonstrate the nested possession of multiple
resources" but their complexity "often makes [them] prohibitive for
large scale experiments".  Ground truth here is a thread-pool
application in which app-server threads stay busy while waiting on the
database (simulated exactly by the LQN).  A flat queueing network of
the same stations cannot express that blocking: it under-predicts
latency exactly when threads are scarce — and the gap closes as the
pool grows.  Node counts quantify the complexity claim.
"""

import numpy as np

from conftest import save_result

from repro.queueing import (
    Activity,
    LqnSimulator,
    LqnTask,
    PoissonArrivals,
    QueueingNetwork,
    Station,
)
from repro.simulation import Environment

APP_DEMAND = 0.002
DB_DEMAND = 0.006
RATE = 110.0
N_REQUESTS = 6000


def _lqn(threads: int) -> LqnSimulator:
    return LqnSimulator(
        [
            LqnTask("app", threads, (Activity(APP_DEMAND, "db"),)),
            LqnTask("db", 1, (Activity(DB_DEMAND),)),
        ],
        reference="app",
    )


def _flat_latency(threads: int, rng: np.random.Generator) -> float:
    """The flat model: app and db as independent stations."""
    env = Environment()
    network = QueueingNetwork(
        env,
        [
            Station("app", threads, lambda _c, r: APP_DEMAND),
            Station("db", 1, lambda _c, r: DB_DEMAND),
        ],
        {"request": ["app", "db"]},
        rng,
    )
    results = network.run_open(
        PoissonArrivals(RATE, rng), lambda _r: "request", N_REQUESTS
    )
    return float(np.mean([r.latency for r in results]))


def test_ablation_lqn_vs_flat(benchmark):
    def sweep():
        rows = []
        for threads in (1, 2, 8):
            rng = np.random.default_rng(61)
            truth = _lqn(threads).run(
                PoissonArrivals(RATE, rng), N_REQUESTS, rng
            )
            flat = _flat_latency(threads, np.random.default_rng(62))
            rows.append(
                (
                    threads,
                    truth.mean_latency * 1e3,
                    flat * 1e3,
                    abs(flat - truth.mean_latency)
                    / truth.mean_latency
                    * 100,
                )
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)

    lqn_nodes = _lqn(1).n_nodes
    flat_nodes = 2  # two stations
    lines = [
        "A9: simultaneous resource possession — LQN vs flat QN",
        f"(app thread pool calling a database; rate {RATE:.0f}/s; "
        f"model sizes: LQN {lqn_nodes} nodes, flat {flat_nodes} stations)",
        f"{'threads':>7} | {'LQN (truth) ms':>14} | {'flat QN ms':>10} | "
        f"{'flat error%':>11}",
        "-" * 55,
    ]
    for threads, truth_ms, flat_ms, err in rows:
        lines.append(
            f"{threads:>7} | {truth_ms:>14.2f} | {flat_ms:>10.2f} | "
            f"{err:>11.1f}"
        )
    save_result("ablation_a9_lqn", "\n".join(lines))

    # With one thread, blocking dominates: the flat model is badly
    # optimistic.  With a deep pool the gap nearly closes.
    errors = {threads: err for threads, _, _, err in rows}
    assert errors[1] > 30.0
    assert errors[2] < 15.0  # even 2 threads mostly hide the blocking here
    assert errors[8] < 15.0
    # And the LQN costs more model nodes — the paper's complexity point.
    assert lqn_nodes > flat_nodes
