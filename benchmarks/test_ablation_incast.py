"""A11 — multi-machine effects: the fan-in (incast) bottleneck.

§5: "given a unified address space in the DC, and since information on
job/task ids is recorded the model can replicate effects like the
TCP/IP incast problem, or other events involving multiple machines
servicing the same request."

We stripe one 8 MiB read over 1..8 chunkservers and measure latency
with a fast (10 GbE) and a slow (1 GbE) client link.  With a fast
link, striping parallelizes the disks and latency falls ~4x.  With a
slow link, the synchronized responses serialize on the client NIC —
the fan-in bottleneck — and striping buys almost nothing.
"""

import numpy as np

from conftest import save_result

from repro.datacenter import GfsCluster, GfsRequest, GfsSpec, MachineSpec
from repro.datacenter.devices import NicSpec
from repro.simulation import Environment, RandomStreams
from repro.tracing import READ, Tracer

OBJECT_BYTES = 8 << 20
WIDTHS = (1, 2, 4, 8)


def _striped_latency(width: int, client_bandwidth: float, seed: int) -> float:
    env = Environment()
    tracer = Tracer()
    machine_spec = MachineSpec(nic=NicSpec(bandwidth=client_bandwidth))
    cluster = GfsCluster(
        env,
        GfsSpec(chunkservers=8, master_cache_hit=1.0),
        RandomStreams(seed),
        tracer,
        machine_spec,
    )
    request = GfsRequest("stripe", READ, OBJECT_BYTES, 0, 65536)
    record = env.run(env.process(cluster.striped_read(request, width)))
    return record.latency


def test_ablation_incast(benchmark):
    def sweep():
        out = {}
        for label, bandwidth in (("10GbE", 1.25e9), ("1GbE", 125e6)):
            latencies = []
            for width in WIDTHS:
                samples = [
                    _striped_latency(width, bandwidth, seed)
                    for seed in range(5)
                ]
                latencies.append(float(np.mean(samples)))
            out[label] = latencies
        return out

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)

    lines = [
        "A11: striped-read latency vs stripe width (8 MiB object)",
        f"{'width':>5} | {'10GbE client ms':>15} | {'1GbE client ms':>14}",
        "-" * 42,
    ]
    for i, width in enumerate(WIDTHS):
        lines.append(
            f"{width:>5} | {results['10GbE'][i] * 1e3:>15.1f} | "
            f"{results['1GbE'][i] * 1e3:>14.1f}"
        )
    fast_speedup = results["10GbE"][0] / results["10GbE"][-1]
    slow_speedup = results["1GbE"][0] / results["1GbE"][-1]
    lines.append(
        f"striping speedup at width 8: {fast_speedup:.1f}x (10GbE) vs "
        f"{slow_speedup:.1f}x (1GbE, fan-in bound)"
    )
    save_result("ablation_a11_incast", "\n".join(lines))

    # Fast client link: striping parallelizes the disks.
    assert fast_speedup > 3.5
    # Slow client link: synchronized responses pile onto the client
    # NIC; the fan-in bottleneck caps the benefit well below the fast
    # link's scaling.
    assert slow_speedup < 3.0
    assert fast_speedup > 1.5 * slow_speedup
    # The 1 GbE latency floor is the serialized 8 MiB client transfer.
    assert results["1GbE"][-1] > OBJECT_BYTES / 125e6
