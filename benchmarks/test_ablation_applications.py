"""A8 — cross-application generality.

§4: "the basic structure of the model remains the same across
different applications, providing a generalized infrastructure for a
wide application space."  The same KOOZA code path (no per-application
logic) is trained and validated on GFS and on the 3-tier web
application; the MapReduce framework is exercised through its job-level
features (its tasks have no per-request network stream, which is
exactly the kind of application-structure difference the dependency
queue is meant to absorb — reported, not hidden).
"""

import numpy as np

from conftest import save_result

from repro.core import KoozaTrainer, ReplayHarness, compare_workloads
from repro.datacenter import run_gfs_workload, run_mapreduce_jobs, run_webapp_workload


def test_ablation_applications(benchmark):
    def sweep():
        rows = []
        gfs = run_gfs_workload(n_requests=1500, seed=7).traces
        web = run_webapp_workload(n_requests=1500, seed=3, arrival_rate=80.0)
        for name, traces in (("gfs", gfs), ("webapp-3tier", web)):
            model = KoozaTrainer().fit(traces)
            replay = ReplayHarness(seed=43).replay(
                model.synthesize(1500, np.random.default_rng(10))
            )
            report = compare_workloads(traces, replay)
            rows.append(
                (
                    name,
                    len(model.dependency_queue.default),
                    report.worst_feature_deviation_pct,
                    report.mean_latency_deviation_pct,
                )
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)

    # MapReduce: job-level execution-time features (the Ganapathi
    # use case) — demonstrates the trace substrate generalizes even
    # where the per-request model does not directly apply.
    traces, results = run_mapreduce_jobs(seed=5)
    times = np.array([r.execution_time for r in results])
    sizes = np.array([r.job.input_bytes for r in results], dtype=float)
    correlation = float(np.corrcoef(sizes, times)[0, 1])

    lines = [
        "A8: one model infrastructure, several applications",
        f"{'application':>13} | {'queue stages':>12} | "
        f"{'worst feat dev%':>15} | {'mean lat dev%':>13}",
        "-" * 62,
    ]
    for name, stages, feat, lat in rows:
        lines.append(
            f"{name:>13} | {stages:>12} | {feat:>15.2f} | {lat:>13.2f}"
        )
    lines.append(
        f"{'mapreduce':>13} | {'job-level':>12} | "
        f"corr(input size, exec time) = {correlation:.2f}"
    )
    save_result("ablation_a8_applications", "\n".join(lines))

    by_name = {r[0]: r for r in rows}
    # Same code path, different mined structure.
    assert by_name["gfs"][1] == 6
    assert by_name["webapp-3tier"][1] > 6
    for name, _, feat, lat in rows:
        assert feat < 1.0
        assert lat < 30.0
    assert correlation > 0.5
