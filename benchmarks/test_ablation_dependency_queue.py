"""A2 — ablating KOOZA's structural components.

The paper's pitch is that the dependency queue and the recorded
job-id-level correlations are what lift four in-breadth models into a
complete application model.  This bench removes each component in turn
and measures what breaks:

* no coupling -> cross-subsystem features decohere;
* no dependency queue -> stage order is wrong (invalid stressing) and
  latency fidelity degrades.
"""

import numpy as np

from conftest import N_REQUESTS, save_result

from repro.core import (
    KoozaConfig,
    KoozaTrainer,
    ReplayHarness,
    compare_workloads,
)
from repro.tracing import WRITE


def _coherence(requests):
    """Fraction of requests whose memory footprint matches their class."""
    good = 0
    for r in requests:
        storage, memory = r.storage_stage, r.memory_stage
        expected = 256 * 1024 if storage.op == WRITE else 16 * 1024
        if memory.size_bytes == expected:
            good += 1
    return good / len(requests)


def test_ablation_dependency_queue(benchmark, gfs_run, kooza_report):
    rng = np.random.default_rng(2)

    def run_ablations():
        out = {}
        for label, config in (
            ("no-coupling", KoozaConfig(couple_subsystems=False)),
            ("no-queue", KoozaConfig(use_dependency_queue=False)),
            ("neither", KoozaConfig(couple_subsystems=False,
                                    use_dependency_queue=False)),
        ):
            model = KoozaTrainer(config).fit(gfs_run.traces)
            requests = model.synthesize(N_REQUESTS, rng)
            replay = ReplayHarness(seed=13).replay(requests)
            report = compare_workloads(
                gfs_run.traces, replay, min_profile_count=1
            )
            out[label] = (requests, report)
        return out

    ablations = benchmark.pedantic(run_ablations, rounds=1, iterations=1)

    full_model = KoozaTrainer(KoozaConfig()).fit(gfs_run.traces)
    full_requests = full_model.synthesize(500, np.random.default_rng(3))

    rows = [
        "A2: structural-component ablation (GFS workload)",
        f"{'variant':>12} | {'coherent feat%':>14} | {'worst feat dev%':>15} | "
        f"{'mean lat dev%':>13}",
        "-" * 65,
        f"{'full KOOZA':>12} | {_coherence(full_requests) * 100:>14.1f} | "
        f"{kooza_report.worst_feature_deviation_pct:>15.2f} | "
        f"{kooza_report.mean_latency_deviation_pct:>13.2f}",
    ]
    for label, (requests, report) in ablations.items():
        rows.append(
            f"{label:>12} | {_coherence(requests) * 100:>14.1f} | "
            f"{report.worst_feature_deviation_pct:>15.2f} | "
            f"{report.mean_latency_deviation_pct:>13.2f}"
        )
    save_result("ablation_a2_dependency_queue", "\n".join(rows))

    # Coupling is what keeps per-request features coherent.
    assert _coherence(full_requests) == 1.0
    no_coupling_requests, no_coupling_report = ablations["no-coupling"]
    assert _coherence(no_coupling_requests) < 0.95
    assert (
        no_coupling_report.worst_feature_deviation_pct
        > kooza_report.worst_feature_deviation_pct
    )
    # The queue is what keeps the stage order (and with it the latency
    # composition) right; without it order is structurally wrong.
    no_queue_requests, _ = ablations["no-queue"]
    assert no_queue_requests[0].stage_order()[0] != "network_rx"
