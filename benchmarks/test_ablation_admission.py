"""A15 — admission control on the in-depth model (Kamra et al.).

Yaksha manages 3-tier web sites by shedding load with a PI controller
when response time exceeds a target — a study that runs entirely on
the in-depth machinery (queueing model + arrival stream).  This bench
overloads a single-server station at 2.4x capacity and compares an
uncontrolled system against the PI-controlled one: the controller
trades a fraction of admitted requests for bounded latency.
"""

import numpy as np

from conftest import save_result

from repro.depth import AdmissionController
from repro.queueing import PoissonArrivals
from repro.simulation import Environment, Resource

SERVICE_TIME = 0.02  # 50 req/s capacity
OFFERED_RATE = 120.0  # 2.4x overload
TARGET_LATENCY = 0.08
HORIZON = 40.0


def _run(controlled: bool):
    env = Environment()
    resource = Resource(env, capacity=1)
    latencies = []

    def service():
        with resource.request() as req:
            yield req
            yield env.timeout(SERVICE_TIME)

    controller = None
    if controlled:
        controller = AdmissionController(
            env,
            target_latency=TARGET_LATENCY,
            rng=np.random.default_rng(0),
            control_interval=0.5,
        )

    def plain_request(env):
        start = env.now
        yield env.process(service())
        latencies.append(env.now - start)

    def source(env):
        arrivals = PoissonArrivals(OFFERED_RATE, np.random.default_rng(1))
        while env.now < HORIZON:
            yield env.timeout(arrivals.next_interarrival())
            if controlled:
                env.process(controller.submit(service))
            else:
                env.process(plain_request(env))

    env.process(source(env))
    env.run(until=HORIZON)
    if controller is not None:
        controller.stop()
        env.run()
        return controller.stats.mean_latency, controller.stats.latency_percentile(
            95
        ), controller.stats.admission_rate
    env.run()
    return (
        float(np.mean(latencies)),
        float(np.percentile(latencies, 95)),
        1.0,
    )


def test_ablation_admission_control(benchmark):
    def run_both():
        uncontrolled = _run(controlled=False)
        controlled = _run(controlled=True)
        return uncontrolled, controlled

    uncontrolled, controlled = benchmark.pedantic(
        run_both, rounds=1, iterations=1
    )

    lines = [
        "A15: PI admission control at 2.4x overload "
        f"(target latency {TARGET_LATENCY * 1e3:.0f} ms)",
        f"{'system':>12} | {'mean lat ms':>11} | {'p95 lat ms':>10} | "
        f"{'admitted':>8}",
        "-" * 52,
        f"{'uncontrolled':>12} | {uncontrolled[0] * 1e3:>11.1f} | "
        f"{uncontrolled[1] * 1e3:>10.1f} | {uncontrolled[2] * 100:>7.0f}%",
        f"{'PI-admission':>12} | {controlled[0] * 1e3:>11.1f} | "
        f"{controlled[1] * 1e3:>10.1f} | {controlled[2] * 100:>7.0f}%",
    ]
    save_result("ablation_a15_admission", "\n".join(lines))

    # Uncontrolled overload: queue grows without bound over the run.
    assert uncontrolled[0] > 10 * TARGET_LATENCY
    # The controller sheds load and holds latency near target.
    assert controlled[2] < 0.75
    assert controlled[0] < 5 * TARGET_LATENCY
    assert controlled[0] < uncontrolled[0] / 5
