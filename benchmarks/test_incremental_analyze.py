"""Bench: incremental re-analysis — warm cache speedup over appends.

Models the intended lifecycle of a long-lived trace store: one initial
collection plus several appended rounds, re-characterizing after each.
Two claims back the analysis cache:

* **Equality** — the warm (all cache hits) profile equals the cold
  (``cache=False``) profile exactly; JSON snapshots round-trip floats
  bit-for-bit.  Asserted after every round.
* **Speedup** — a fully warm re-analysis skips every stream-file
  decode and fold, paying only content hashing plus JSON state loads,
  so it beats the cold pass by a wide margin once the store has a few
  rounds.  With >= 4 appended rounds the warm pass must be at least
  3x faster.

Results land in ``benchmarks/results/incremental_analyze.txt`` and —
as the machine-readable record the acceptance criteria name —
``BENCH_incremental_analyze.json`` at the repository root.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from conftest import save_result

from repro.datacenter import FleetSpec, collect_fleet_to_store
from repro.store import analyze_source

REPO_ROOT = Path(__file__).resolve().parent.parent

#: 1 initial collection + 4 appended rounds.
ROUNDS = 5
REPLICAS = 2
N_REQUESTS = 600
SEED = 7


def test_incremental_analyze_speedup(tmp_path):
    directory = tmp_path / "store"
    spec = FleetSpec(
        app="gfs", replicas=REPLICAS, seed=SEED, n_requests=N_REQUESTS
    )
    rows = []
    for round_index in range(ROUNDS):
        collect_fleet_to_store(
            spec, directory=directory, append=round_index > 0
        )

        start = time.perf_counter()
        cold = analyze_source(directory, cache=False)
        t_cold = time.perf_counter() - start

        # Populate / extend the cache (hits every prior round's shards,
        # folds only this round's), then time the fully warm pass.
        populate = analyze_source(directory, cache=True)
        assert populate.cache_misses <= REPLICAS
        start = time.perf_counter()
        warm = analyze_source(directory, cache=True)
        t_warm = time.perf_counter() - start

        assert warm.cache_misses == 0
        assert warm.profile == cold.profile, "warm result must equal cold"
        rows.append(
            {
                "round": round_index,
                "shards": (round_index + 1) * REPLICAS,
                "cold_seconds": round(t_cold, 4),
                "warm_seconds": round(t_warm, 4),
                "speedup": round(t_cold / t_warm, 2) if t_warm > 0 else None,
            }
        )

    final = rows[-1]
    payload = {
        "bench": "incremental_analyze",
        "app": spec.app,
        "replicas_per_round": REPLICAS,
        "n_requests": N_REQUESTS,
        "seed": SEED,
        "rounds": rows,
        "final_speedup": final["speedup"],
        "warm_equals_cold": True,
    }
    (REPO_ROOT / "BENCH_incremental_analyze.json").write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n"
    )

    lines = [
        f"replicas/round={REPLICAS} n_requests={N_REQUESTS} seed={SEED}",
        f"{'round':>5} | {'shards':>6} | {'cold s':>8} | {'warm s':>8} | "
        f"{'speedup':>7}",
    ]
    for row in rows:
        lines.append(
            f"{row['round']:>5} | {row['shards']:>6} | "
            f"{row['cold_seconds']:>8.4f} | {row['warm_seconds']:>8.4f} | "
            f"{row['speedup']:>6.1f}x"
        )
    lines.append("warm profile equals cold profile every round: yes")
    save_result("incremental_analyze", "\n".join(lines))

    assert final["speedup"] >= 3.0, (
        f"warm re-analysis over {final['shards']} cached shards should be "
        f">= 3x faster than cold, got {final['speedup']}x"
    )
